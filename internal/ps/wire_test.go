package ps

import (
	"bytes"
	"encoding/binary"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"hetpipe/internal/tensor"
)

// refEncodeVec is an independent reference encoding of the wire vector
// layout: uvarint dim, then each float64's IEEE-754 bits little-endian. The
// fuzz test holds encoder.vec to it byte for byte.
func refEncodeVec(v tensor.Vector) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(v)))]...)
	for _, f := range v {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		buf = append(buf, b[:]...)
	}
	return buf
}

// refEncodeStr is the reference string encoding: uvarint length + raw bytes.
func refEncodeStr(s string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	buf := append([]byte(nil), tmp[:binary.PutUvarint(tmp[:], uint64(len(s)))]...)
	return append(buf, s...)
}

func FuzzWireCodecRoundTrip(f *testing.F) {
	f.Add([]byte{}, "w", uint64(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, "chunk0007", uint64(42))
	f.Add(bytes.Repeat([]byte{0xff}, 64), "", uint64(1<<63))
	f.Fuzz(func(t *testing.T, raw []byte, s string, x uint64) {
		// Interpret the raw bytes as float64s (NaNs and infinities included:
		// the codec must be bit-transparent, not value-transparent).
		v := make(tensor.Vector, len(raw)/8)
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}

		var e encoder
		e.begin()
		e.uvarint(x)
		e.str(s)
		e.vec(v)
		frame := e.finish()

		// The payload must match the reference encoding exactly.
		var want []byte
		var tmp [binary.MaxVarintLen64]byte
		want = append(want, tmp[:binary.PutUvarint(tmp[:], x)]...)
		want = append(want, refEncodeStr(s)...)
		want = append(want, refEncodeVec(v)...)
		if got := frame[4:]; !bytes.Equal(got, want) {
			t.Fatalf("encoded payload differs from reference:\n got %x\nwant %x", got, want)
		}
		if got := binary.LittleEndian.Uint32(frame[:4]); int(got) != len(want) {
			t.Fatalf("length prefix = %d, want %d", got, len(want))
		}

		// And decode back bit-identically, both into a fresh buffer and into
		// a reused right-sized one.
		var d decoder
		d.reset(frame[4:])
		gx, err := d.uvarint()
		if err != nil || gx != x {
			t.Fatalf("uvarint round trip = %d, %v, want %d", gx, err, x)
		}
		gs, err := d.str()
		if err != nil || gs != s {
			t.Fatalf("str round trip = %q, %v, want %q", gs, err, s)
		}
		reuse := make(tensor.Vector, len(v))
		gv, err := d.vecInto(reuse)
		if err != nil {
			t.Fatalf("vecInto: %v", err)
		}
		if len(v) > 0 && &gv[0] != &reuse[0] {
			t.Fatal("vecInto did not reuse the right-sized destination")
		}
		if len(gv) != len(v) {
			t.Fatalf("vec round trip length = %d, want %d", len(gv), len(v))
		}
		for i := range v {
			if math.Float64bits(gv[i]) != math.Float64bits(v[i]) {
				t.Fatalf("vec[%d] = %x, want %x", i, math.Float64bits(gv[i]), math.Float64bits(v[i]))
			}
		}
		if d.remaining() != 0 {
			t.Fatalf("decoder has %d bytes left over", d.remaining())
		}

		// Truncating the frame anywhere must produce an error, never a panic
		// or a silent short read of all three fields.
		if len(want) > 0 {
			d.reset(want[:len(want)-1])
			_, e1 := d.uvarint()
			var e2, e3 error
			if e1 == nil {
				_, e2 = d.str()
			}
			if e1 == nil && e2 == nil {
				_, e3 = d.vecInto(nil)
			}
			if e1 == nil && e2 == nil && e3 == nil {
				t.Fatal("decoding a truncated payload succeeded")
			}
		}
	})
}

func TestDecoderRejectsHugeVecWithoutAllocating(t *testing.T) {
	// A vector header claiming 2^40 elements backed by a 10-byte payload
	// must fail on the length check, not attempt a 8TiB allocation.
	var e encoder
	e.begin()
	e.uvarint(1 << 40)
	e.u8(0)
	var d decoder
	d.reset(e.finish()[4:])
	if _, err := d.vecInto(nil); err == nil {
		t.Fatal("decoding an impossible vector length succeeded")
	}
}

// rawConn dials addr without the protocol preamble.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestTCPVersionMismatchRejectedWithProtocolError(t *testing.T) {
	s, addr := serveFixture(t, 1)
	conn := rawConn(t, addr)
	pre := appendPreamble(nil)
	binary.LittleEndian.PutUint16(pre[4:], wireVersion+1)
	if _, err := conn.Write(pre); err != nil {
		t.Fatal(err)
	}
	payload := readRawFrame(t, conn)
	if len(payload) == 0 || payload[0] != statusProtoErr {
		t.Fatalf("version-mismatch response = %v, want statusProtoErr frame", payload)
	}
	if !strings.Contains(string(payload[1:]), "version") {
		t.Errorf("version-mismatch message = %q", payload[1:])
	}
	waitForStableMalformed(t, s, 1)
}

func TestTCPOversizedFrameRejectedWithProtocolError(t *testing.T) {
	s, addr := serveFixture(t, 1)
	conn := rawConn(t, addr)
	msg := appendPreamble(nil)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(maxFrame+1))
	msg = append(msg, hdr[:]...)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	payload := readRawFrame(t, conn)
	if len(payload) == 0 || payload[0] != statusProtoErr {
		t.Fatalf("oversized-frame response = %v, want statusProtoErr frame", payload)
	}
	if !strings.Contains(string(payload[1:]), "size limit") {
		t.Errorf("oversized-frame message = %q", payload[1:])
	}
	waitForStableMalformed(t, s, 1)
}

func TestTCPTruncatedPayloadCountedMalformed(t *testing.T) {
	s, addr := serveFixture(t, 1)
	conn := rawConn(t, addr)
	// A frame header promising 100 bytes, followed by 3 and a hangup: the
	// server cannot respond (the peer is gone) but must count the garbage.
	msg := appendPreamble(nil)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 100)
	msg = append(msg, hdr[:]...)
	msg = append(msg, 1, 2, 3)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitForStableMalformed(t, s, 1)
}

func TestTCPTruncatedRequestPayloadRejectedWithProtocolError(t *testing.T) {
	// A well-framed request whose payload is internally truncated: an opPush
	// whose keyset promises more keys than the frame holds.
	s, addr := serveFixture(t, 1)
	conn := rawConn(t, addr)
	var e encoder
	frame := appendPreamble(nil)
	e.begin()
	e.u8(opPush)
	e.uvarint(0) // worker
	e.uvarint(7) // seven keys follow... except nothing does
	frame = append(frame, e.finish()...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	payload := readRawFrame(t, conn)
	if len(payload) == 0 || payload[0] != statusProtoErr {
		t.Fatalf("truncated-request response = %v, want statusProtoErr frame", payload)
	}
	waitForStableMalformed(t, s, 1)
}

func TestClientSafeForConcurrentUse(t *testing.T) {
	// One Client, many goroutines: the mutex must serialize the wire so no
	// response is mismatched to another caller's request. Meant for -race.
	const goroutines = 8
	const iters = 50
	s, addr := serveFixture(t, 1)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < iters; i++ {
				switch g % 3 {
				case 0:
					if _, err := c.GlobalClock(); err != nil {
						errs <- err
						return
					}
				case 1:
					if m, err := c.Meta(); err != nil || m.Workers != 1 {
						errs <- err
						return
					}
				case 2:
					if _, _, err := c.Pull([]string{"w"}, 0); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	deadline := time.After(10 * time.Second)
	for g := 0; g < goroutines; g++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("concurrent client calls deadlocked")
		}
	}
	if got := s.MalformedRequests(); got != 0 {
		t.Fatalf("MalformedRequests after concurrent use = %d, want 0", got)
	}
}
