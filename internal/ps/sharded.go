package ps

import (
	"fmt"

	"hetpipe/internal/tensor"
)

// Sharded fans one worker's pushes and pulls out across multiple servers
// according to a Placement — the client-side half of the paper's deployment,
// where each node runs a parameter server holding a subset of the layers.
//
// The type works over any backend implementing Backend (the in-process
// Server does; a set of TCP Clients can be adapted), so the same code path
// serves simulations, tests, and real sockets.
type Sharded struct {
	placement *Placement
	backends  []Backend
	// workers and dims come from each backend's Meta at construction time;
	// Push validates against them before touching any backend, so a bad
	// update can never advance a subset of the shard clocks.
	workers int
	dims    []map[string]int
}

// Backend is the per-server operation set Sharded needs. *Server implements
// it directly; *Client adds the same methods over TCP.
type Backend interface {
	Push(worker int, updates map[string]tensor.Vector) (int, error)
	Pull(keys []string, minClock int) (map[string]tensor.Vector, int, error)
	PullAt(keys []string, clock int) (map[string]tensor.Vector, error)
	GlobalClock() (int, error)
	Meta() (Meta, error)
	MaxClockDistance() (int, error)
}

// serverBackend adapts *Server (whose GlobalClock returns no error).
type serverBackend struct{ s *Server }

func (b serverBackend) Push(w int, u map[string]tensor.Vector) (int, error) { return b.s.Push(w, u) }
func (b serverBackend) Pull(k []string, mc int) (map[string]tensor.Vector, int, error) {
	return b.s.Pull(k, mc)
}
func (b serverBackend) PullAt(k []string, c int) (map[string]tensor.Vector, error) {
	return b.s.PullAt(k, c)
}
func (b serverBackend) GlobalClock() (int, error)      { return b.s.GlobalClock(), nil }
func (b serverBackend) Meta() (Meta, error)            { return b.s.Meta() }
func (b serverBackend) MaxClockDistance() (int, error) { return b.s.MaxClockDistance(), nil }

// AdaptServer wraps an in-process Server as a Backend.
func AdaptServer(s *Server) Backend { return serverBackend{s} }

// NewSharded builds a sharded client over one backend per placement server.
// It fetches each backend's Meta so pushes can be validated client-side, and
// checks that every placed key is registered on its server.
func NewSharded(p *Placement, backends []Backend) (*Sharded, error) {
	if p == nil {
		return nil, fmt.Errorf("ps: nil placement")
	}
	if len(backends) != p.Servers() {
		return nil, fmt.Errorf("ps: placement expects %d servers, got %d backends", p.Servers(), len(backends))
	}
	s := &Sharded{placement: p, backends: backends, dims: make([]map[string]int, len(backends))}
	for i, b := range backends {
		m, err := b.Meta()
		if err != nil {
			return nil, fmt.Errorf("ps: shard server %d meta: %w", i, err)
		}
		if i == 0 {
			s.workers = m.Workers
		} else if m.Workers != s.workers {
			return nil, fmt.Errorf("ps: shard server %d expects %d workers, server 0 expects %d", i, m.Workers, s.workers)
		}
		s.dims[i] = m.Dims
	}
	for srv := 0; srv < p.Servers(); srv++ {
		for _, key := range p.KeysOn(srv) {
			if _, ok := s.dims[srv][key]; !ok {
				return nil, fmt.Errorf("ps: placed shard %q not registered on server %d", key, srv)
			}
		}
	}
	return s, nil
}

// Push splits the update map by placement and pushes each slice to its
// server; every involved server's clock advances for the worker. Servers
// holding none of the keys still receive an empty push so their clocks stay
// aligned — WSP's global clock is the minimum across all shards.
//
// Every slice is validated (worker range, placement, shard existence, and
// lengths) before anything is sent, so a REJECTED push leaves every shard's
// clock untouched — no server can refuse what its peers already accepted.
// A transport failure mid-fan-out (a TCP server dying between shards) can
// still leave the clocks skewed; there is no unpush, so callers must treat
// that error as poisoning the run (internal/cluster closes every server,
// which unblocks and fails all peers).
func (s *Sharded) Push(worker int, updates map[string]tensor.Vector) error {
	if worker < 0 || worker >= s.workers {
		return fmt.Errorf("ps: worker %d out of range [0,%d)", worker, s.workers)
	}
	perServer := make([]map[string]tensor.Vector, len(s.backends))
	for i := range perServer {
		perServer[i] = make(map[string]tensor.Vector)
	}
	for key, delta := range updates {
		srv, err := s.placement.ServerOf(key)
		if err != nil {
			return err
		}
		dim, ok := s.dims[srv][key]
		if !ok {
			return fmt.Errorf("ps: shard %q not registered on server %d", key, srv)
		}
		if dim != len(delta) {
			return fmt.Errorf("ps: shard %q length %d, delta length %d", key, dim, len(delta))
		}
		perServer[srv][key] = delta
	}
	for i, b := range s.backends {
		if _, err := b.Push(worker, perServer[i]); err != nil {
			return fmt.Errorf("ps: shard server %d: %w", i, err)
		}
	}
	return nil
}

// Pull gathers the requested keys from their servers, each blocking until
// that server's global clock reaches minClock. It returns the merged weights
// and the minimum clock across ALL shard servers — including ones that hold
// none of the keys — so successive pulls never observe a clock regression.
// An empty key set degenerates to a GlobalClock query.
func (s *Sharded) Pull(keys []string, minClock int) (map[string]tensor.Vector, int, error) {
	perServer := make([][]string, len(s.backends))
	for _, key := range keys {
		srv, err := s.placement.ServerOf(key)
		if err != nil {
			return nil, 0, err
		}
		perServer[srv] = append(perServer[srv], key)
	}
	out := make(map[string]tensor.Vector, len(keys))
	clock := -1
	for i, b := range s.backends {
		var c int
		if len(perServer[i]) == 0 {
			// Not involved in the transfer, but its clock still bounds the
			// global clock the caller observes.
			gc, err := b.GlobalClock()
			if err != nil {
				return nil, 0, fmt.Errorf("ps: shard server %d: %w", i, err)
			}
			c = gc
		} else {
			weights, pc, err := b.Pull(perServer[i], minClock)
			if err != nil {
				return nil, 0, fmt.Errorf("ps: shard server %d: %w", i, err)
			}
			for k, v := range weights {
				out[k] = v
			}
			c = pc
		}
		if clock < 0 || c < clock {
			clock = c
		}
	}
	if clock < 0 {
		// No backends at all cannot happen (NewSharded requires >= 1), but
		// keep the fallback total.
		gc, err := s.GlobalClock()
		if err != nil {
			return nil, 0, err
		}
		clock = gc
	}
	return out, clock, nil
}

// PullAt gathers the clock-versioned snapshot of the requested keys, each
// involved server blocking until its global clock reaches `clock`. All
// shards answer from the same clock boundary, so the merged result is the
// deterministic snapshot the WSP analysis reasons about.
func (s *Sharded) PullAt(keys []string, clock int) (map[string]tensor.Vector, error) {
	perServer := make([][]string, len(s.backends))
	for _, key := range keys {
		srv, err := s.placement.ServerOf(key)
		if err != nil {
			return nil, err
		}
		perServer[srv] = append(perServer[srv], key)
	}
	out := make(map[string]tensor.Vector, len(keys))
	for i, b := range s.backends {
		if len(perServer[i]) == 0 {
			continue
		}
		weights, err := b.PullAt(perServer[i], clock)
		if err != nil {
			return nil, fmt.Errorf("ps: shard server %d: %w", i, err)
		}
		for k, v := range weights {
			out[k] = v
		}
	}
	return out, nil
}

// GlobalClock reports the minimum clock across all shard servers.
func (s *Sharded) GlobalClock() (int, error) {
	min := -1
	for i, b := range s.backends {
		c, err := b.GlobalClock()
		if err != nil {
			return 0, fmt.Errorf("ps: shard server %d: %w", i, err)
		}
		if min < 0 || c < min {
			min = c
		}
	}
	return min, nil
}

// MaxClockDistance reports the largest clock spread observed by any shard.
func (s *Sharded) MaxClockDistance() (int, error) {
	max := 0
	for i, b := range s.backends {
		d, err := b.MaxClockDistance()
		if err != nil {
			return 0, fmt.Errorf("ps: shard server %d: %w", i, err)
		}
		if d > max {
			max = d
		}
	}
	return max, nil
}
