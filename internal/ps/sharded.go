package ps

import (
	"fmt"

	"hetpipe/internal/tensor"
)

// Sharded fans one worker's pushes and pulls out across multiple servers
// according to a Placement — the client-side half of the paper's deployment,
// where each node runs a parameter server holding a subset of the layers.
//
// The type works over any backend implementing Backend (the in-process
// Server does; a set of TCP Clients can be adapted), so the same code path
// serves simulations, tests, and real sockets.
type Sharded struct {
	placement *Placement
	backends  []Backend
}

// Backend is the per-server operation set Sharded needs. *Server implements
// it directly; *Client adds the same methods over TCP.
type Backend interface {
	Push(worker int, updates map[string]tensor.Vector) (int, error)
	Pull(keys []string, minClock int) (map[string]tensor.Vector, int, error)
	GlobalClock() (int, error)
}

// serverBackend adapts *Server (whose GlobalClock returns no error).
type serverBackend struct{ s *Server }

func (b serverBackend) Push(w int, u map[string]tensor.Vector) (int, error) { return b.s.Push(w, u) }
func (b serverBackend) Pull(k []string, mc int) (map[string]tensor.Vector, int, error) {
	return b.s.Pull(k, mc)
}
func (b serverBackend) GlobalClock() (int, error) { return b.s.GlobalClock(), nil }

// AdaptServer wraps an in-process Server as a Backend.
func AdaptServer(s *Server) Backend { return serverBackend{s} }

// NewSharded builds a sharded client over one backend per placement server.
func NewSharded(p *Placement, backends []Backend) (*Sharded, error) {
	if p == nil {
		return nil, fmt.Errorf("ps: nil placement")
	}
	if len(backends) != p.Servers() {
		return nil, fmt.Errorf("ps: placement expects %d servers, got %d backends", p.Servers(), len(backends))
	}
	return &Sharded{placement: p, backends: backends}, nil
}

// Push splits the update map by placement and pushes each slice to its
// server; every involved server's clock advances for the worker. Servers
// holding none of the keys still receive an empty push so their clocks stay
// aligned — WSP's global clock is the minimum across all shards.
func (s *Sharded) Push(worker int, updates map[string]tensor.Vector) error {
	perServer := make([]map[string]tensor.Vector, len(s.backends))
	for i := range perServer {
		perServer[i] = make(map[string]tensor.Vector)
	}
	for key, delta := range updates {
		srv, err := s.placement.ServerOf(key)
		if err != nil {
			return err
		}
		perServer[srv][key] = delta
	}
	for i, b := range s.backends {
		if _, err := b.Push(worker, perServer[i]); err != nil {
			return fmt.Errorf("ps: shard server %d: %w", i, err)
		}
	}
	return nil
}

// Pull gathers the requested keys from their servers, each blocking until
// that server's global clock reaches minClock. It returns the merged weights
// and the minimum clock observed.
func (s *Sharded) Pull(keys []string, minClock int) (map[string]tensor.Vector, int, error) {
	perServer := make([][]string, len(s.backends))
	for _, key := range keys {
		srv, err := s.placement.ServerOf(key)
		if err != nil {
			return nil, 0, err
		}
		perServer[srv] = append(perServer[srv], key)
	}
	out := make(map[string]tensor.Vector, len(keys))
	clock := -1
	for i, b := range s.backends {
		if len(perServer[i]) == 0 {
			continue
		}
		weights, c, err := b.Pull(perServer[i], minClock)
		if err != nil {
			return nil, 0, fmt.Errorf("ps: shard server %d: %w", i, err)
		}
		for k, v := range weights {
			out[k] = v
		}
		if clock < 0 || c < clock {
			clock = c
		}
	}
	if clock < 0 {
		clock = 0
	}
	return out, clock, nil
}

// GlobalClock reports the minimum clock across all shard servers.
func (s *Sharded) GlobalClock() (int, error) {
	min := -1
	for i, b := range s.backends {
		c, err := b.GlobalClock()
		if err != nil {
			return 0, fmt.Errorf("ps: shard server %d: %w", i, err)
		}
		if min < 0 || c < min {
			min = c
		}
	}
	return min, nil
}
