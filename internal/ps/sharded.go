package ps

import (
	"fmt"
	"sync"

	"hetpipe/internal/tensor"
)

// Sharded fans one worker's pushes and pulls out across multiple servers
// according to a Placement — the client-side half of the paper's deployment,
// where each node runs a parameter server holding a subset of the layers.
// All backends are contacted concurrently (first error wins), so a wave's
// data-plane latency is the slowest shard, not the sum of all shards.
//
// The type works over any backend implementing Backend (the in-process
// Server does via AdaptServer; *Client is one natively), so the same code
// path serves simulations, tests, and real sockets.
type Sharded struct {
	placement *Placement
	backends  []Backend
	// workers and dims come from each backend's Meta at construction time;
	// PushOrdered validates against them before touching any backend, so a
	// bad update can never advance a subset of the shard clocks.
	workers int
	dims    []map[string]int
	// scratch pools fan-out state so the steady-state wave loop allocates
	// nothing: per-server key/vector partitions, result clocks, goroutine
	// bookkeeping.
	scratch sync.Pool
}

// Backend is the per-server operation set Sharded needs, in the ordered
// slice forms the data plane runs on. *Client implements it natively over
// TCP; AdaptServer wraps an in-process *Server.
type Backend interface {
	PushOrdered(worker int, keys []string, vecs []tensor.Vector) (int, error)
	PullInto(dst []tensor.Vector, keys []string, minClock int) (int, error)
	PullAtInto(dst []tensor.Vector, keys []string, clock int) error
	GlobalClock() (int, error)
	Meta() (Meta, error)
	MaxClockDistance() (int, error)
}

// serverBackend adapts *Server (whose GlobalClock returns no error).
type serverBackend struct{ s *Server }

func (b serverBackend) PushOrdered(w int, keys []string, vecs []tensor.Vector) (int, error) {
	return b.s.PushOrdered(w, keys, vecs)
}
func (b serverBackend) PullInto(dst []tensor.Vector, keys []string, mc int) (int, error) {
	return b.s.PullInto(dst, keys, mc)
}
func (b serverBackend) PullAtInto(dst []tensor.Vector, keys []string, c int) error {
	return b.s.PullAtInto(dst, keys, c)
}
func (b serverBackend) GlobalClock() (int, error)      { return b.s.GlobalClock(), nil }
func (b serverBackend) Meta() (Meta, error)            { return b.s.Meta() }
func (b serverBackend) MaxClockDistance() (int, error) { return b.s.MaxClockDistance(), nil }

// AdaptServer wraps an in-process Server as a Backend.
func AdaptServer(s *Server) Backend { return serverBackend{s} }

// NewSharded builds a sharded client over one backend per placement server.
// It fetches each backend's Meta so pushes can be validated client-side, and
// checks that every placed key is registered on its server.
func NewSharded(p *Placement, backends []Backend) (*Sharded, error) {
	if p == nil {
		return nil, fmt.Errorf("ps: nil placement")
	}
	if len(backends) != p.Servers() {
		return nil, fmt.Errorf("ps: placement expects %d servers, got %d backends", p.Servers(), len(backends))
	}
	s := &Sharded{placement: p, backends: backends, dims: make([]map[string]int, len(backends))}
	for i, b := range backends {
		m, err := b.Meta()
		if err != nil {
			return nil, fmt.Errorf("ps: shard server %d meta: %w", i, err)
		}
		if i == 0 {
			s.workers = m.Workers
		} else if m.Workers != s.workers {
			return nil, fmt.Errorf("ps: shard server %d expects %d workers, server 0 expects %d", i, m.Workers, s.workers)
		}
		s.dims[i] = m.Dims
	}
	for srv := 0; srv < p.Servers(); srv++ {
		for _, key := range p.KeysOn(srv) {
			if _, ok := s.dims[srv][key]; !ok {
				return nil, fmt.Errorf("ps: placed shard %q not registered on server %d", key, srv)
			}
		}
	}
	return s, nil
}

// Fan-out operations a fanScratch can run.
const (
	fanPush byte = iota + 1
	fanPull
	fanPullAt
)

// fanScratch is the pooled state of one fan-out: the per-server partition of
// the caller's keys and vectors, the concurrency bookkeeping, and the
// first-error-wins result slot. Per-server work is spawned through
// pre-allocated zero-argument thunks (go st.thunks[i]()) — a go statement
// with arguments heap-allocates a wrapper per spawn, a stored nullary
// closure does not — so the steady-state dispatch allocates nothing.
type fanScratch struct {
	sh     *Sharded
	op     byte
	worker int
	clock  int // minClock for fanPull, snapshot clock for fanPullAt

	perIdx  [][]int // position of each partitioned key in the caller's slices
	perKeys [][]string
	perVecs [][]tensor.Vector
	clocks  []int    // per-server observed clock (fanPull)
	thunks  []func() // thunks[i] runs server i's share and signals wg

	wg     sync.WaitGroup
	mu     sync.Mutex
	err    error
	errSrv int
}

// acquire returns a pooled (or fresh) scratch sized for s's backends, with
// every partition emptied.
func (s *Sharded) acquire(op byte) *fanScratch {
	st, _ := s.scratch.Get().(*fanScratch)
	if st == nil {
		st = &fanScratch{}
	}
	st.prep(s, op)
	return st
}

func (s *Sharded) release(st *fanScratch) {
	s.scratch.Put(st)
}

// prep resets the scratch for a fan-out over sh's backends.
//
//hetlint:hotpath
func (st *fanScratch) prep(sh *Sharded, op byte) {
	st.sh = sh
	st.op = op
	st.err = nil
	st.errSrv = 0
	n := len(sh.backends)
	if len(st.thunks) < n {
		st.grow(n)
	}
	st.perIdx = st.perIdx[:n]
	st.perKeys = st.perKeys[:n]
	st.perVecs = st.perVecs[:n]
	st.clocks = st.clocks[:n]
	st.thunks = st.thunks[:n]
	for i := 0; i < n; i++ {
		st.perIdx[i] = st.perIdx[i][:0]
		st.perKeys[i] = st.perKeys[i][:0]
		st.perVecs[i] = st.perVecs[i][:0]
		st.clocks[i] = 0
	}
}

// grow extends the scratch to n server slots, pre-allocating each slot's
// spawn thunk. Cold path: it runs once per deployment size, never in the
// steady state.
func (st *fanScratch) grow(n int) {
	for len(st.thunks) < n {
		st.perIdx = append(st.perIdx, nil)
		st.perKeys = append(st.perKeys, nil)
		st.perVecs = append(st.perVecs, nil)
		st.clocks = append(st.clocks, 0)
		i := len(st.thunks)
		st.thunks = append(st.thunks, func() {
			st.run(i)
			st.wg.Done()
		})
	}
}

// add partitions one (key, vector) pair at caller position idx onto server
// srv.
//
//hetlint:hotpath
func (st *fanScratch) add(srv, idx int, key string, v tensor.Vector) {
	st.perIdx[srv] = append(st.perIdx[srv], idx)
	st.perKeys[srv] = append(st.perKeys[srv], key)
	st.perVecs[srv] = append(st.perVecs[srv], v)
}

// fan runs the prepared operation against every backend concurrently and
// waits for all of them. With a single backend it runs inline — no goroutine
// hop on unsharded deployments.
//
//hetlint:hotpath
func (st *fanScratch) fan() {
	n := len(st.sh.backends)
	if n == 1 {
		st.run(0)
		return
	}
	// The calling goroutine takes the last backend itself: one fewer
	// spawn, and the caller does useful work instead of blocking in Wait
	// while the others run.
	st.wg.Add(n - 1)
	for i := 0; i < n-1; i++ {
		go st.thunks[i]()
	}
	st.run(n - 1)
	st.wg.Wait()
}

// run executes the scratch's operation against backend i. Pushes go to
// every server — ones holding none of the keys receive an empty push so
// their clocks stay aligned (WSP's global clock is the minimum across all
// shards). Pulls query uninvolved servers for their clock only; snapshot
// pulls skip them entirely.
//
//hetlint:hotpath
func (st *fanScratch) run(i int) {
	b := st.sh.backends[i]
	switch st.op {
	case fanPush:
		if _, err := b.PushOrdered(st.worker, st.perKeys[i], st.perVecs[i]); err != nil {
			st.fail(i, err)
		}
	case fanPull:
		if len(st.perKeys[i]) == 0 {
			// Not involved in the transfer, but its clock still bounds the
			// global clock the caller observes.
			c, err := b.GlobalClock()
			if err != nil {
				st.fail(i, err)
				return
			}
			st.clocks[i] = c
			return
		}
		c, err := b.PullInto(st.perVecs[i], st.perKeys[i], st.clock)
		if err != nil {
			st.fail(i, err)
			return
		}
		st.clocks[i] = c
	case fanPullAt:
		if len(st.perKeys[i]) == 0 {
			return
		}
		if err := b.PullAtInto(st.perVecs[i], st.perKeys[i], st.clock); err != nil {
			st.fail(i, err)
		}
	}
}

// fail records the fan-out's error; the first recorded error wins and the
// rest are dropped.
//
//hetlint:hotpath
func (st *fanScratch) fail(i int, err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
		st.errSrv = i
	}
	st.mu.Unlock()
}

func (st *fanScratch) wrapErr() error {
	if st.err == nil {
		return nil
	}
	return fmt.Errorf("ps: shard server %d: %w", st.errSrv, st.err)
}

// PushOrdered splits the update (parallel key and delta slices) by placement
// and pushes each slice to its server concurrently; every server's clock
// advances for the worker, including servers holding none of the keys (they
// receive an empty push so their clocks stay aligned).
//
// The whole update is validated (worker range, placement, shard existence,
// lengths, duplicates) before anything is sent, so a REJECTED push leaves
// every shard's clock untouched — no server can refuse what its peers
// already accepted. A transport failure mid-fan-out (a TCP server dying
// between shards) can still leave the clocks skewed; there is no unpush, so
// callers must treat that error as poisoning the run (internal/cluster
// closes every server, which unblocks and fails all peers).
func (s *Sharded) PushOrdered(worker int, keys []string, vecs []tensor.Vector) error {
	if worker < 0 || worker >= s.workers {
		return fmt.Errorf("ps: worker %d out of range [0,%d)", worker, s.workers)
	}
	if len(keys) != len(vecs) {
		return fmt.Errorf("ps: %d keys for %d vectors", len(keys), len(vecs))
	}
	st := s.acquire(fanPush)
	defer s.release(st)
	st.worker = worker
	for i, key := range keys {
		srv, err := s.placement.ServerOf(key)
		if err != nil {
			return err
		}
		dim, ok := s.dims[srv][key]
		if !ok {
			return fmt.Errorf("ps: shard %q not registered on server %d", key, srv)
		}
		if dim != len(vecs[i]) {
			return fmt.Errorf("ps: shard %q length %d, delta length %d", key, dim, len(vecs[i]))
		}
		for j := 0; j < i; j++ {
			if keys[j] == key {
				return fmt.Errorf("ps: duplicate shard %q in push", key)
			}
		}
		st.add(srv, i, key, vecs[i])
	}
	st.fan()
	return st.wrapErr()
}

// Push splits the update map by placement and pushes each slice to its
// server. Map-form convenience over PushOrdered.
func (s *Sharded) Push(worker int, updates map[string]tensor.Vector) error {
	keys := make([]string, 0, len(updates))
	vecs := make([]tensor.Vector, 0, len(updates))
	for k, v := range updates {
		keys = append(keys, k)
		vecs = append(vecs, v)
	}
	return s.PushOrdered(worker, keys, vecs)
}

// PullInto gathers the requested keys from their servers concurrently, each
// involved server blocking until its global clock reaches minClock, filling
// dst[i] with keys[i]'s weights (reusing dst[i]'s storage when its length
// matches). It returns the minimum clock across ALL shard servers —
// including ones that hold none of the keys — so successive pulls never
// observe a clock regression. An empty key set degenerates to a GlobalClock
// query.
func (s *Sharded) PullInto(dst []tensor.Vector, keys []string, minClock int) (int, error) {
	if len(dst) != len(keys) {
		return 0, fmt.Errorf("ps: %d destinations for %d keys", len(dst), len(keys))
	}
	st := s.acquire(fanPull)
	defer s.release(st)
	st.clock = minClock
	for i, key := range keys {
		srv, err := s.placement.ServerOf(key)
		if err != nil {
			return 0, err
		}
		st.add(srv, i, key, dst[i])
	}
	st.fan()
	if err := st.wrapErr(); err != nil {
		return 0, err
	}
	clock := -1
	for i := range st.clocks {
		if clock < 0 || st.clocks[i] < clock {
			clock = st.clocks[i]
		}
	}
	// Backends may have reallocated destination vectors (first pull into
	// empty buffers); write them back to the caller's positions.
	for srv := range st.perIdx {
		for j, idx := range st.perIdx[srv] {
			dst[idx] = st.perVecs[srv][j]
		}
	}
	return clock, nil
}

// Pull gathers the requested keys as a merged map. Map-form convenience
// over PullInto.
func (s *Sharded) Pull(keys []string, minClock int) (map[string]tensor.Vector, int, error) {
	dst := make([]tensor.Vector, len(keys))
	clock, err := s.PullInto(dst, keys, minClock)
	if err != nil {
		return nil, 0, err
	}
	out := make(map[string]tensor.Vector, len(keys))
	for i, k := range keys {
		out[k] = dst[i]
	}
	return out, clock, nil
}

// PullAtInto gathers the clock-versioned snapshot of the requested keys
// concurrently, each involved server blocking until its global clock
// reaches `clock`, filling dst like PullInto. All shards answer from the
// same clock boundary, so the merged result is the deterministic snapshot
// the WSP analysis reasons about.
func (s *Sharded) PullAtInto(dst []tensor.Vector, keys []string, clock int) error {
	if len(dst) != len(keys) {
		return fmt.Errorf("ps: %d destinations for %d keys", len(dst), len(keys))
	}
	st := s.acquire(fanPullAt)
	defer s.release(st)
	st.clock = clock
	for i, key := range keys {
		srv, err := s.placement.ServerOf(key)
		if err != nil {
			return err
		}
		st.add(srv, i, key, dst[i])
	}
	st.fan()
	if err := st.wrapErr(); err != nil {
		return err
	}
	for srv := range st.perIdx {
		for j, idx := range st.perIdx[srv] {
			dst[idx] = st.perVecs[srv][j]
		}
	}
	return nil
}

// PullAt gathers the clock-versioned snapshot of the requested keys as a
// merged map. Map-form convenience over PullAtInto.
func (s *Sharded) PullAt(keys []string, clock int) (map[string]tensor.Vector, error) {
	dst := make([]tensor.Vector, len(keys))
	if err := s.PullAtInto(dst, keys, clock); err != nil {
		return nil, err
	}
	out := make(map[string]tensor.Vector, len(keys))
	for i, k := range keys {
		out[k] = dst[i]
	}
	return out, nil
}

// GlobalClock reports the minimum clock across all shard servers.
func (s *Sharded) GlobalClock() (int, error) {
	min := -1
	for i, b := range s.backends {
		c, err := b.GlobalClock()
		if err != nil {
			return 0, fmt.Errorf("ps: shard server %d: %w", i, err)
		}
		if min < 0 || c < min {
			min = c
		}
	}
	return min, nil
}

// MaxClockDistance reports the largest clock spread observed by any shard.
func (s *Sharded) MaxClockDistance() (int, error) {
	max := 0
	for i, b := range s.backends {
		d, err := b.MaxClockDistance()
		if err != nil {
			return 0, fmt.Errorf("ps: shard server %d: %w", i, err)
		}
		if d > max {
			max = d
		}
	}
	return max, nil
}
