package ps

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hetpipe/internal/tensor"
)

func TestServerRegisterAndPull(t *testing.T) {
	s, err := NewServer(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("w1", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("w1", []float64{0}); err == nil {
		t.Error("duplicate registration accepted")
	}
	got, clock, err := s.Pull([]string{"w1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if clock != 0 {
		t.Errorf("clock = %d, want 0", clock)
	}
	if got["w1"][1] != 2 {
		t.Errorf("pull = %v", got["w1"])
	}
	// Pulled values are copies.
	got["w1"][1] = 99
	again, _, _ := s.Pull([]string{"w1"}, 0)
	if again["w1"][1] != 2 {
		t.Error("pull returned aliased storage")
	}
}

func TestServerPushAppliesUpdates(t *testing.T) {
	s, _ := NewServer(2)
	s.Register("w", []float64{10, 20})
	clock, err := s.Push(0, map[string]tensor.Vector{"w": {1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if clock != 1 {
		t.Errorf("worker clock = %d, want 1", clock)
	}
	// Global clock stays 0 until worker 1 pushes.
	if g := s.GlobalClock(); g != 0 {
		t.Errorf("global clock = %d, want 0", g)
	}
	s.Push(1, map[string]tensor.Vector{"w": {0.5, 0.5}})
	if g := s.GlobalClock(); g != 1 {
		t.Errorf("global clock = %d, want 1", g)
	}
	got, _, _ := s.Pull([]string{"w"}, 1)
	if got["w"][0] != 11.5 || got["w"][1] != 19.5 {
		t.Errorf("weights = %v, want [11.5 19.5]", got["w"])
	}
}

func TestServerPushErrors(t *testing.T) {
	s, _ := NewServer(1)
	s.Register("w", []float64{1})
	if _, err := s.Push(5, nil); err == nil {
		t.Error("out-of-range worker accepted")
	}
	if _, err := s.Push(0, map[string]tensor.Vector{"nope": {1}}); err == nil {
		t.Error("unregistered shard accepted")
	}
	if _, err := s.Push(0, map[string]tensor.Vector{"w": {1, 2}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := s.Pull([]string{"nope"}, 0); err == nil {
		t.Error("pull of unregistered shard accepted")
	}
}

func TestServerBlockingPull(t *testing.T) {
	s, _ := NewServer(2)
	s.Register("w", []float64{0})
	done := make(chan int, 1)
	go func() {
		_, clock, err := s.Pull([]string{"w"}, 1)
		if err != nil {
			done <- -1
			return
		}
		done <- clock
	}()
	select {
	case <-done:
		t.Fatal("pull returned before clock advanced")
	case <-time.After(20 * time.Millisecond):
	}
	s.Push(0, map[string]tensor.Vector{"w": {1}})
	s.Push(1, map[string]tensor.Vector{"w": {1}})
	select {
	case clock := <-done:
		if clock < 1 {
			t.Errorf("pull observed clock %d, want >= 1", clock)
		}
	case <-time.After(time.Second):
		t.Fatal("pull never unblocked")
	}
}

func TestServerCloseUnblocksPulls(t *testing.T) {
	s, _ := NewServer(2)
	s.Register("w", []float64{0})
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.Pull([]string{"w"}, 5)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("pull on closed server should fail")
		}
	case <-time.After(time.Second):
		t.Fatal("close did not unblock pull")
	}
}

func TestConcurrentWorkersWSPTraffic(t *testing.T) {
	// N workers push W waves each with concurrent pulls; final weights must
	// equal the sum of all updates (associativity of +=).
	const workers, waves = 4, 25
	s, _ := NewServer(workers)
	s.Register("w", []float64{0})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < waves; c++ {
				if _, err := s.Push(w, map[string]tensor.Vector{"w": {1}}); err != nil {
					t.Error(err)
					return
				}
				// SSP-ish read: require the server to have everything
				// through wave c-2 from everyone.
				min := c - 2
				if min < 0 {
					min = 0
				}
				if _, _, err := s.Pull([]string{"w"}, min); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, clock, err := s.Pull([]string{"w"}, waves)
	if err != nil {
		t.Fatal(err)
	}
	if clock != waves {
		t.Errorf("final clock = %d, want %d", clock, waves)
	}
	if got["w"][0] != workers*waves {
		t.Errorf("final weight = %v, want %d", got["w"][0], workers*waves)
	}
	pushes, pulls := s.Stats()
	if pushes != workers*waves || pulls == 0 {
		t.Errorf("stats = %d pushes %d pulls", pushes, pulls)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e"}
	p, err := RoundRobin(keys, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist := p.Distribution()
	if dist[0] != 3 || dist[1] != 2 {
		t.Errorf("distribution = %v, want [3 2]", dist)
	}
	srv, err := p.ServerOf("c")
	if err != nil || srv != 0 {
		t.Errorf("ServerOf(c) = %d, %v", srv, err)
	}
	if _, err := p.ServerOf("zzz"); err == nil {
		t.Error("unplaced key accepted")
	}
	if got := len(p.KeysOn(0)); got != 3 {
		t.Errorf("KeysOn(0) = %d keys, want 3", got)
	}
}

func TestPlacementValidation(t *testing.T) {
	if _, err := RoundRobin(nil, 0); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := NewPlacement(map[string]int{"a": 7}, 2); err == nil {
		t.Error("out-of-range assignment accepted")
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	s, _ := NewServer(2)
	s.Register("w", []float64{1, 1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(l, s)
	defer l.Close()

	c0, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	if clock, err := c0.Push(0, map[string]tensor.Vector{"w": {1, 2}}); err != nil || clock != 1 {
		t.Fatalf("push: clock=%d err=%v", clock, err)
	}
	if clock, err := c1.Push(1, map[string]tensor.Vector{"w": {1, 2}}); err != nil || clock != 1 {
		t.Fatalf("push: clock=%d err=%v", clock, err)
	}
	weights, clock, err := c0.Pull([]string{"w"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if clock != 1 || weights["w"][0] != 3 || weights["w"][1] != 5 {
		t.Errorf("pull = %v clock %d", weights, clock)
	}
	if g, err := c1.GlobalClock(); err != nil || g != 1 {
		t.Errorf("global clock = %d, %v", g, err)
	}
	// Server-side errors propagate as client errors.
	if _, err := c0.Push(0, map[string]tensor.Vector{"missing": {1}}); err == nil {
		t.Error("push to missing shard should fail over TCP too")
	}
}

func TestTCPBlockingPullAcrossClients(t *testing.T) {
	s, _ := NewServer(2)
	s.Register("w", []float64{0})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(l, s)
	defer l.Close()

	puller, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer puller.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := puller.Pull([]string{"w"}, 1)
		done <- err
	}()

	select {
	case <-done:
		t.Fatal("pull returned before both workers pushed")
	case <-time.After(20 * time.Millisecond):
	}
	for w := 0; w < 2; w++ {
		c, err := Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Push(w, map[string]tensor.Vector{"w": {1}}); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked pull failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TCP pull never unblocked")
	}
}

func TestManyShardsAcrossPlacement(t *testing.T) {
	// Simulates the paper's sharded deployment: four servers, shards spread
	// round-robin, two workers pushing to all of them.
	const servers = 4
	var srvs []*Server
	for i := 0; i < servers; i++ {
		s, _ := NewServer(2)
		srvs = append(srvs, s)
	}
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("layer%02d", i)
	}
	pl, _ := RoundRobin(keys, servers)
	for _, k := range keys {
		srv, _ := pl.ServerOf(k)
		srvs[srv].Register(k, []float64{0})
	}
	for w := 0; w < 2; w++ {
		perServer := make([]map[string]tensor.Vector, servers)
		for i := range perServer {
			perServer[i] = make(map[string]tensor.Vector)
		}
		for _, k := range keys {
			srv, _ := pl.ServerOf(k)
			perServer[srv][k] = tensor.Vector{1}
		}
		for i, updates := range perServer {
			if _, err := srvs[i].Push(w, updates); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, k := range keys {
		srv, _ := pl.ServerOf(k)
		got, _, err := srvs[srv].Pull([]string{k}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[k][0] != 2 {
			t.Errorf("shard %s = %v, want 2", k, got[k][0])
		}
	}
}
