package ps

import "fmt"

// Placement maps shard keys to parameter-server indices. The paper places
// model layers over the per-node parameter servers either round-robin (the
// TensorFlow default policy) or, under the ED allocation, "locally": a
// stage's parameters live on the node that hosts that stage in every virtual
// worker, so weight synchronization never crosses nodes.
type Placement struct {
	assign  map[string]int
	servers int
}

// NewPlacement builds a placement from an explicit assignment.
func NewPlacement(assign map[string]int, servers int) (*Placement, error) {
	if servers < 1 {
		return nil, fmt.Errorf("ps: need at least one server, got %d", servers)
	}
	p := &Placement{assign: make(map[string]int, len(assign)), servers: servers}
	for k, srv := range assign {
		if srv < 0 || srv >= servers {
			return nil, fmt.Errorf("ps: shard %q assigned to server %d, out of range [0,%d)", k, srv, servers)
		}
		p.assign[k] = srv
	}
	return p, nil
}

// RoundRobin assigns keys to servers in order, the default policy.
func RoundRobin(keys []string, servers int) (*Placement, error) {
	if servers < 1 {
		return nil, fmt.Errorf("ps: need at least one server, got %d", servers)
	}
	assign := make(map[string]int, len(keys))
	for i, k := range keys {
		assign[k] = i % servers
	}
	return NewPlacement(assign, servers)
}

// ServerOf reports which server holds a key.
func (p *Placement) ServerOf(key string) (int, error) {
	srv, ok := p.assign[key]
	if !ok {
		return 0, fmt.Errorf("ps: shard %q not placed", key)
	}
	return srv, nil
}

// Servers reports the server count.
func (p *Placement) Servers() int { return p.servers }

// KeysOn lists the keys held by one server.
func (p *Placement) KeysOn(server int) []string {
	var out []string
	for k, s := range p.assign {
		if s == server {
			out = append(out, k)
		}
	}
	return out
}

// Distribution reports how many keys each server holds.
func (p *Placement) Distribution() []int {
	out := make([]int, p.servers)
	for _, s := range p.assign {
		out[s]++
	}
	return out
}
