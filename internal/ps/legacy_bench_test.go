package ps

import (
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"testing"

	"hetpipe/internal/tensor"
)

// This file preserves the retired gob wire protocol and the serial map-based
// sharded fan-out as benchmarks, so the recorded_baselines section of
// BENCH_ps.json stays reproducible: BenchmarkLegacyGobTCP and
// BenchmarkLegacySerialSharded are faithful replicas of the pre-binary
// data plane (one gob request/response per message, map[string][]float64
// payloads, one backend at a time), kept only for comparison — nothing
// outside this file uses them.

type legacyOp int

const (
	legacyOpPush legacyOp = iota + 1
	legacyOpPullAt
)

type legacyRequest struct {
	Op       legacyOp
	Worker   int
	Updates  map[string][]float64
	Keys     []string
	MinClock int
}

type legacyResponse struct {
	Err     string
	Weights map[string][]float64
	Clock   int
}

// legacyServe speaks the retired protocol against a current Server.
func legacyServe(l net.Listener, s *Server) {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
			for {
				var req legacyRequest
				if err := dec.Decode(&req); err != nil {
					return
				}
				var resp legacyResponse
				switch req.Op {
				case legacyOpPush:
					updates := make(map[string]tensor.Vector, len(req.Updates))
					for k, v := range req.Updates {
						updates[k] = tensor.Vector(v)
					}
					clock, err := s.Push(req.Worker, updates)
					resp.Clock = clock
					if err != nil {
						resp.Err = err.Error()
					}
				case legacyOpPullAt:
					weights, err := s.PullAt(req.Keys, req.MinClock)
					if err != nil {
						resp.Err = err.Error()
					} else {
						resp.Weights = make(map[string][]float64, len(weights))
						for k, v := range weights {
							resp.Weights[k] = v
						}
					}
				}
				if err := enc.Encode(&resp); err != nil {
					return
				}
			}
		}()
	}
}

type legacyClient struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func legacyDial(b *testing.B, addr string) *legacyClient {
	b.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	return &legacyClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

func (c *legacyClient) roundTrip(req *legacyRequest) (*legacyResponse, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	resp := &legacyResponse{}
	if err := c.dec.Decode(resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp, nil
}

func (c *legacyClient) push(w int, updates map[string]tensor.Vector) error {
	wire := make(map[string][]float64, len(updates))
	for k, v := range updates {
		wire[k] = v
	}
	_, err := c.roundTrip(&legacyRequest{Op: legacyOpPush, Worker: w, Updates: wire})
	return err
}

func (c *legacyClient) pullAt(keys []string, clock int) (map[string]tensor.Vector, error) {
	resp, err := c.roundTrip(&legacyRequest{Op: legacyOpPullAt, Keys: keys, MinClock: clock})
	if err != nil {
		return nil, err
	}
	out := make(map[string]tensor.Vector, len(resp.Weights))
	for k, v := range resp.Weights {
		out[k] = tensor.Vector(v)
	}
	return out, nil
}

// BenchmarkLegacyGobTCP is the retired gob protocol's push and snapshot-pull
// round-trip at the standard benchmark shapes — the TCP half of the recorded
// baseline the binary protocol is gated against.
func BenchmarkLegacyGobTCP(b *testing.B) {
	keys, updates := benchShapes()

	b.Run("push", func(b *testing.B) {
		var (
			s *Server
			l net.Listener
			c *legacyClient
		)
		setup := func() {
			s = newBenchServer(b, keys, updates)
			var err error
			l, err = net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go legacyServe(l, s)
			c = legacyDial(b, l.Addr().String())
		}
		teardown := func() {
			c.conn.Close()
			l.Close()
		}
		setup()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%benchEpoch == 0 {
				b.StopTimer()
				teardown()
				setup()
				b.StartTimer()
			}
			if err := c.push(0, updates); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		teardown()
	})

	b.Run("pullat", func(b *testing.B) {
		s := newBenchServer(b, keys, updates)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		go legacyServe(l, s)
		c := legacyDial(b, l.Addr().String())
		defer c.conn.Close()
		if err := c.push(0, updates); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.pullAt(keys, 1); err != nil {
				b.Fatal(err)
			}
		}
	})

	// wave mirrors BenchmarkTCPPushPull/wave on the retired protocol: one
	// push plus one snapshot pull at the clock it produced, per iteration.
	b.Run("wave", func(b *testing.B) {
		var (
			s *Server
			l net.Listener
			c *legacyClient
		)
		setup := func() {
			s = newBenchServer(b, keys, updates)
			var err error
			l, err = net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go legacyServe(l, s)
			c = legacyDial(b, l.Addr().String())
		}
		teardown := func() {
			c.conn.Close()
			l.Close()
		}
		setup()
		clock := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%benchEpoch == 0 {
				b.StopTimer()
				teardown()
				setup()
				clock = 0
				b.StartTimer()
			}
			if err := c.push(0, updates); err != nil {
				b.Fatal(err)
			}
			clock++
			if _, err := c.pullAt(keys, clock); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		teardown()
	})
}

// legacySerialSharded replicates the retired in-process sharded data plane:
// map-valued ops fanned out one backend at a time, with the response maps
// merged key-by-key into a second map.
type legacySerialSharded struct {
	placement *Placement
	backends  []Backend
}

func (s *legacySerialSharded) push(worker int, updates map[string]tensor.Vector) error {
	perServer := make([]map[string]tensor.Vector, len(s.backends))
	for i := range perServer {
		perServer[i] = make(map[string]tensor.Vector)
	}
	for key, delta := range updates {
		srv, err := s.placement.ServerOf(key)
		if err != nil {
			return err
		}
		perServer[srv][key] = delta
	}
	for i, b := range s.backends {
		keys := make([]string, 0, len(perServer[i]))
		vecs := make([]tensor.Vector, 0, len(perServer[i]))
		for k, v := range perServer[i] {
			keys = append(keys, k)
			vecs = append(vecs, v)
		}
		if _, err := b.PushOrdered(worker, keys, vecs); err != nil {
			return err
		}
	}
	return nil
}

func (s *legacySerialSharded) pullAt(keys []string, clock int) (map[string]tensor.Vector, error) {
	perServer := make([][]string, len(s.backends))
	for _, key := range keys {
		srv, err := s.placement.ServerOf(key)
		if err != nil {
			return nil, err
		}
		perServer[srv] = append(perServer[srv], key)
	}
	out := make(map[string]tensor.Vector, len(keys))
	for i, b := range s.backends {
		if len(perServer[i]) == 0 {
			continue
		}
		dst := make([]tensor.Vector, len(perServer[i]))
		if err := b.PullAtInto(dst, perServer[i], clock); err != nil {
			return nil, err
		}
		weights := make(map[string]tensor.Vector, len(dst))
		for j, k := range perServer[i] {
			weights[k] = dst[j]
		}
		for k, v := range weights {
			out[k] = v
		}
	}
	return out, nil
}

// BenchmarkLegacySerialSharded is the retired serial map-based in-process
// fan-out at the standard benchmark shapes — the in-process half of the
// recorded baseline the pooled concurrent fan-out is gated against.
func BenchmarkLegacySerialSharded(b *testing.B) {
	const servers = 4
	keys, updates := benchShapes()

	newLegacy := func(b *testing.B) *legacySerialSharded {
		b.Helper()
		pl, backends := newBenchBackends(b, keys, servers)
		return &legacySerialSharded{placement: pl, backends: backends}
	}

	b.Run("push", func(b *testing.B) {
		sh := newLegacy(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%benchEpoch == 0 {
				b.StopTimer()
				sh = newLegacy(b)
				b.StartTimer()
			}
			if err := sh.push(0, updates); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("pullat", func(b *testing.B) {
		sh := newLegacy(b)
		if err := sh.push(0, updates); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sh.pullAt(keys, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
