package ps

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"hetpipe/internal/tensor"
)

// The wire protocol: one gob-encoded request per message, one response back.
// Pulls may block server-side, so each connection is served by its own
// goroutine and a client must not interleave concurrent calls on one
// connection (use one connection per worker thread, as the tests do).

type wireOp int

const (
	opPush wireOp = iota + 1
	opPull
	opClock
	opPullAt
	opMeta
	opDistance
)

type wireRequest struct {
	Op       wireOp
	Worker   int
	Updates  map[string][]float64
	Keys     []string
	MinClock int
}

type wireResponse struct {
	Err     string
	Weights map[string][]float64
	Clock   int
	Workers int
	Dims    map[string]int
}

// Serve accepts connections on l and dispatches requests to s until the
// listener closes. Each connection gets a dedicated goroutine so blocking
// pulls do not stall other clients.
func Serve(l net.Listener, s *Server) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			serveConn(conn, s)
		}()
	}
}

func serveConn(conn net.Conn, s *Server) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return // client went away (io.EOF) or sent garbage
		}
		var resp wireResponse
		switch req.Op {
		case opPush:
			updates := make(map[string]tensor.Vector, len(req.Updates))
			for k, v := range req.Updates {
				updates[k] = tensor.Vector(v)
			}
			clock, err := s.Push(req.Worker, updates)
			resp.Clock = clock
			if err != nil {
				resp.Err = err.Error()
			}
		case opPull:
			weights, clock, err := s.Pull(req.Keys, req.MinClock)
			resp.Clock = clock
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Weights = make(map[string][]float64, len(weights))
				for k, v := range weights {
					resp.Weights[k] = v
				}
			}
		case opClock:
			resp.Clock = s.GlobalClock()
		case opPullAt:
			weights, err := s.PullAt(req.Keys, req.MinClock)
			resp.Clock = req.MinClock
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Weights = make(map[string][]float64, len(weights))
				for k, v := range weights {
					resp.Weights[k] = v
				}
			}
		case opMeta:
			m, err := s.Meta()
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Workers = m.Workers
				resp.Dims = m.Dims
			}
		case opDistance:
			resp.Clock = s.MaxClockDistance()
		default:
			resp.Err = fmt.Sprintf("ps: unknown op %d", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Client is a TCP client for one worker thread. It is not safe for
// concurrent use; open one client per concurrent caller.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a parameter server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ps: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *wireRequest) (*wireResponse, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("ps: send: %w", err)
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("ps: server closed connection")
		}
		return nil, fmt.Errorf("ps: receive: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// Push sends worker w's aggregated wave update; it returns the worker's new
// clock.
func (c *Client) Push(w int, updates map[string]tensor.Vector) (int, error) {
	raw := make(map[string][]float64, len(updates))
	for k, v := range updates {
		raw[k] = v
	}
	resp, err := c.roundTrip(&wireRequest{Op: opPush, Worker: w, Updates: raw})
	if err != nil {
		return 0, err
	}
	return resp.Clock, nil
}

// Pull fetches shards, blocking server-side until the global clock reaches
// minClock.
func (c *Client) Pull(keys []string, minClock int) (map[string]tensor.Vector, int, error) {
	resp, err := c.roundTrip(&wireRequest{Op: opPull, Keys: keys, MinClock: minClock})
	if err != nil {
		return nil, 0, err
	}
	out := make(map[string]tensor.Vector, len(resp.Weights))
	for k, v := range resp.Weights {
		out[k] = tensor.Vector(v)
	}
	return out, resp.Clock, nil
}

// GlobalClock queries the server's clock.
func (c *Client) GlobalClock() (int, error) {
	resp, err := c.roundTrip(&wireRequest{Op: opClock})
	if err != nil {
		return 0, err
	}
	return resp.Clock, nil
}

// PullAt fetches the clock-versioned snapshot of the requested shards,
// blocking server-side until the global clock reaches `clock`.
func (c *Client) PullAt(keys []string, clock int) (map[string]tensor.Vector, error) {
	resp, err := c.roundTrip(&wireRequest{Op: opPullAt, Keys: keys, MinClock: clock})
	if err != nil {
		return nil, err
	}
	out := make(map[string]tensor.Vector, len(resp.Weights))
	for k, v := range resp.Weights {
		out[k] = tensor.Vector(v)
	}
	return out, nil
}

// Meta queries the server's shard layout and worker count.
func (c *Client) Meta() (Meta, error) {
	resp, err := c.roundTrip(&wireRequest{Op: opMeta})
	if err != nil {
		return Meta{}, err
	}
	return Meta{Workers: resp.Workers, Dims: resp.Dims}, nil
}

// MaxClockDistance queries the largest clock spread the server has observed.
func (c *Client) MaxClockDistance() (int, error) {
	resp, err := c.roundTrip(&wireRequest{Op: opDistance})
	if err != nil {
		return 0, err
	}
	return resp.Clock, nil
}
