package ps

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"hetpipe/internal/tensor"
)

// The TCP transport speaks the binary wire protocol described in wire.go:
// length-prefixed frames, per-connection key interning, raw little-endian
// float payloads through pooled buffers. Pulls may block server-side, so
// each connection is served by its own goroutine; a Client serializes
// concurrent callers with a mutex, but one connection per worker thread
// (as internal/cluster deploys them) remains the fast configuration.

// connReadBuf sizes each side's buffered reader. Deliberately small: the
// buffer only needs to amortize the tiny reads (frame headers, preambles,
// push acks). Bulk payloads are read with io.ReadFull into the frame
// buffer, and bufio passes reads larger than its buffer straight to the
// socket — so a small buffer means weight payloads land in the frame
// buffer in one kernel copy instead of bouncing through bufio's.
const connReadBuf = 4 << 10

// Serve accepts connections on l and dispatches requests to s until the
// listener closes. Each connection gets a dedicated goroutine so blocking
// pulls do not stall other clients. Snapshot responses are cached per
// (clock, key set) across all of the listener's connections: clock-versioned
// snapshots are immutable once readable, so replay recovery and the D-gated
// pulls every worker issues at the same clock boundary are served from one
// pre-encoded frame instead of re-marshaling per puller.
func Serve(l net.Listener, s *Server) error {
	cache := newSnapCache()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			sc := &serverConn{conn: conn, s: s, cache: cache, br: bufio.NewReaderSize(conn, connReadBuf)}
			sc.serve()
		}()
	}
}

// snapCache holds pre-encoded opPullAt response frames keyed by (clock, key
// set). Entries are immutable — a clock-c snapshot can only be read once the
// global clock reached c, after which its value is fixed — so the cache
// never invalidates. Retention mirrors the server's own snapshot retention
// (one entry per clock boundary per distinct key set; workers all pull the
// same full key set, so in practice one per clock).
type snapCache struct {
	mu      sync.Mutex
	byClock map[int][]snapEntry
}

type snapEntry struct {
	keys  []string
	frame []byte
}

func newSnapCache() *snapCache {
	return &snapCache{byClock: make(map[int][]snapEntry)}
}

// get returns the cached frame for (clock, keys), or nil.
func (c *snapCache) get(clock int, keys []string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.byClock[clock] {
		if keysEqual(e.keys, keys) {
			return e.frame
		}
	}
	return nil
}

// put stores a copy of the encoded frame under (clock, keys).
func (c *snapCache) put(clock int, keys []string, frame []byte) {
	e := snapEntry{keys: append([]string(nil), keys...), frame: append([]byte(nil), frame...)}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, have := range c.byClock[clock] {
		if keysEqual(have.keys, keys) {
			return // raced with another connection; the frames are identical
		}
	}
	c.byClock[clock] = append(c.byClock[clock], e)
}

//hetlint:hotpath
func keysEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// serverConn is one connection's server-side state: pooled frame buffers and
// the interned key table mirroring the client's.
type serverConn struct {
	conn  net.Conn
	s     *Server
	cache *snapCache
	br    *bufio.Reader

	rbuf []byte  // incoming frame payload
	dec  decoder // reads rbuf
	enc  encoder // outgoing response frame

	names []string // interned key table: id -> key
	keys  []string // current request's key set (scratch)
	// Push payload scratch, reused across requests: decoded deltas land as
	// consecutive key-order segments of one contiguous vector, so retaining
	// the wave update is a single streaming clone on the server.
	flat tensor.Vector
	dims []int
}

// serve runs the connection's request loop. A clean shutdown is the client
// closing the connection between frames (bare io.EOF); anything else — a bad
// preamble, a truncated or oversized frame, an undecodable request — counts
// as a malformed request in the server's stats and, where the connection is
// still writable, draws a protocol-error frame before the connection closes.
func (c *serverConn) serve() {
	var pre [preambleLen]byte
	if _, err := io.ReadFull(c.br, pre[:]); err != nil {
		if err != io.EOF { // connected and vanished: clean enough
			c.s.noteMalformed()
			c.writeProtoErr("ps: truncated connection preamble")
		}
		return
	}
	if err := checkPreamble(pre[:]); err != nil {
		c.s.noteMalformed()
		c.writeProtoErr(err.Error())
		return
	}
	for {
		n, err := c.readFrameHeader()
		if err != nil {
			if err != io.EOF { // mid-header cut or unreadable socket
				c.s.noteMalformed()
			}
			return
		}
		if n > maxFrame {
			c.s.noteMalformed()
			c.writeProtoErr("ps: frame exceeds size limit")
			return
		}
		if cap(c.rbuf) < n {
			c.rbuf = make([]byte, n)
		}
		c.rbuf = c.rbuf[:n]
		if _, err := io.ReadFull(c.br, c.rbuf); err != nil {
			c.s.noteMalformed() // length prefix promised more bytes than arrived
			return
		}
		c.dec.reset(c.rbuf)
		if !c.handle() {
			return
		}
	}
}

// readFrameHeader reads the 4-byte length prefix. io.EOF at the frame
// boundary is the clean-shutdown signal; a partial header surfaces as
// io.ErrUnexpectedEOF.
func (c *serverConn) readFrameHeader() (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint32(hdr[:])), nil
}

// handle decodes and executes one request, writing one response frame.
// It returns false when the connection must close (protocol violation or an
// unwritable socket).
func (c *serverConn) handle() bool {
	op, err := c.dec.u8()
	if err != nil {
		return c.protoFail(err)
	}
	switch op {
	case opPush:
		return c.handlePush()
	case opPull:
		return c.handlePull()
	case opPullAt:
		return c.handlePullAt()
	case opClock:
		c.enc.begin()
		c.enc.u8(statusOK)
		c.enc.uvarint(uint64(c.s.GlobalClock()))
		return c.writeFrame()
	case opDistance:
		c.enc.begin()
		c.enc.u8(statusOK)
		c.enc.uvarint(uint64(c.s.MaxClockDistance()))
		return c.writeFrame()
	case opMeta:
		return c.handleMeta()
	default:
		c.s.noteMalformed()
		c.writeProtoErr(fmt.Sprintf("ps: unknown op %d", op))
		return true // framing is intact; the peer may recover
	}
}

// protoFail counts a malformed request, reports it to the peer, and closes.
func (c *serverConn) protoFail(err error) bool {
	c.s.noteMalformed()
	c.writeProtoErr(err.Error())
	return false
}

// decodeKeys reads a keyset into c.keys, interning new definitions.
//
//hetlint:hotpath
func (c *serverConn) decodeKeys() error {
	n, err := c.dec.uvarint()
	if err != nil {
		return err
	}
	// Each referenced key needs at least one payload byte, so a count beyond
	// the remaining frame is a lie, not a big request.
	if n > uint64(c.dec.remaining()) {
		return errKeyCount
	}
	c.keys = c.keys[:0]
	for i := uint64(0); i < n; i++ {
		tok, err := c.dec.uvarint()
		if err != nil {
			return err
		}
		if tok == 0 {
			name, err := c.dec.str()
			if err != nil {
				return err
			}
			c.names = append(c.names, name)
			c.keys = append(c.keys, name)
			continue
		}
		id := tok - 1
		if id >= uint64(len(c.names)) {
			return errBadKeyRef
		}
		c.keys = append(c.keys, c.names[id])
	}
	return nil
}

func (c *serverConn) handlePush() bool {
	worker, err := c.dec.uvarint()
	if err != nil {
		return c.protoFail(err)
	}
	if err := c.decodeKeys(); err != nil {
		return c.protoFail(err)
	}
	c.flat = c.flat[:0]
	c.dims = c.dims[:0]
	for range c.keys {
		n, b, err := c.dec.vecRaw()
		if err != nil {
			return c.protoFail(err)
		}
		off := len(c.flat)
		c.flat = growVec(c.flat, n)
		tensor.GetLE(c.flat[off:off+n], b)
		c.dims = append(c.dims, n)
	}
	// Acknowledge before applying: previewPush runs the full validation and
	// predicts the resulting clock, the acknowledgment goes out, and the
	// apply overlaps with its network transit. pushOrderedFlat revalidates,
	// so even a racing misuse (two connections pushing as one worker)
	// cannot corrupt the server — it can only make the commit fail after
	// the ack, which tears down this connection.
	clock, err := c.s.previewPush(int(worker), c.keys, c.dims)
	if err != nil {
		return c.writeAppErr(err)
	}
	c.enc.begin()
	c.enc.u8(statusOK)
	c.enc.uvarint(uint64(clock))
	if !c.writeFrame() {
		return false
	}
	_, err = c.s.pushOrderedFlat(int(worker), c.keys, c.dims, c.flat)
	return err == nil
}

// growVec extends v by n elements, reallocating with headroom when the
// capacity runs out (cold: the scratch stabilizes after the first push).
//
//hetlint:hotpath
func growVec(v tensor.Vector, n int) tensor.Vector {
	need := len(v) + n
	if cap(v) >= need {
		return v[:need]
	}
	nv := make(tensor.Vector, need, 2*need)
	copy(nv, v)
	return nv
}

// visit implements vecSink: the server calls it once per requested key,
// under its lock, and the vector is encoded straight into the response
// frame — no intermediate copy, no map.
//
//hetlint:hotpath
func (c *serverConn) visit(_ int, _ string, v tensor.Vector) error {
	c.enc.vec(v)
	return nil
}

func (c *serverConn) handlePull() bool {
	minClock, err := c.dec.uvarint()
	if err != nil {
		return c.protoFail(err)
	}
	if err := c.decodeKeys(); err != nil {
		return c.protoFail(err)
	}
	c.enc.begin()
	c.enc.u8(statusOK)
	clock, err := c.s.pullView(c.keys, int(minClock), c)
	if err != nil {
		return c.writeAppErr(err)
	}
	c.enc.uvarint(uint64(clock)) // clock trails the vectors; see wire.go
	return c.writeFrame()
}

func (c *serverConn) handlePullAt() bool {
	clock, err := c.dec.uvarint()
	if err != nil {
		return c.protoFail(err)
	}
	if err := c.decodeKeys(); err != nil {
		return c.protoFail(err)
	}
	if frame := c.cache.get(int(clock), c.keys); frame != nil {
		// The snapshot is already encoded, but the D-bound still holds: the
		// pull may not return before the global clock reaches it.
		if err := c.s.waitClock(int(clock)); err != nil {
			return c.writeAppErr(err)
		}
		c.s.countCachedPull()
		_, err := c.conn.Write(frame)
		return err == nil
	}
	c.enc.begin()
	c.enc.u8(statusOK)
	if err := c.s.pullAtView(c.keys, int(clock), c); err != nil {
		return c.writeAppErr(err)
	}
	c.cache.put(int(clock), c.keys, c.enc.finish())
	return c.writeFrame()
}

func (c *serverConn) handleMeta() bool {
	m, err := c.s.Meta()
	if err != nil {
		return c.writeAppErr(err)
	}
	keys := make([]string, 0, len(m.Dims))
	for k := range m.Dims {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c.enc.begin()
	c.enc.u8(statusOK)
	c.enc.uvarint(uint64(m.Workers))
	c.enc.uvarint(uint64(len(keys)))
	for _, k := range keys {
		c.enc.str(k)
		c.enc.uvarint(uint64(m.Dims[k]))
	}
	return c.writeFrame()
}

// writeFrame finishes the pending response and writes it in one syscall.
//
//hetlint:hotpath
func (c *serverConn) writeFrame() bool {
	_, err := c.conn.Write(c.enc.finish())
	return err == nil
}

// writeAppErr discards any partially encoded response and reports an
// application-level error; the connection stays usable.
func (c *serverConn) writeAppErr(err error) bool {
	c.enc.begin()
	c.enc.u8(statusAppErr)
	c.enc.str(err.Error())
	return c.writeFrame()
}

// writeProtoErr reports a protocol violation. Best-effort: the peer may
// already be gone, and the connection closes either way.
func (c *serverConn) writeProtoErr(msg string) {
	c.enc.begin()
	c.enc.u8(statusProtoErr)
	c.enc.str(msg)
	c.conn.Write(c.enc.finish())
}

// Client is a TCP client for one parameter-server connection. All methods
// are safe for concurrent use: a mutex serializes request/response pairs on
// the wire (interleaved frames would corrupt the stream, which is exactly
// how the old gob transport could be misused). For parallelism, open one
// client per concurrent caller, as internal/cluster does per worker.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader

	enc  encoder // outgoing request frame
	rbuf []byte  // incoming response payload
	dec  decoder

	ids map[string]uint32 // interned key table: key -> id
}

// Dial connects to a parameter server at addr and sends the protocol
// preamble.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ps: dial %s: %w", addr, err)
	}
	if _, err := conn.Write(appendPreamble(nil)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ps: send preamble to %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, connReadBuf),
		ids:  make(map[string]uint32),
	}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// encodeKeys appends the keyset section, interning keys new to this
// connection. Steady state writes two or three bytes per key.
//
//hetlint:hotpath
func (c *Client) encodeKeys(keys []string) {
	c.enc.uvarint(uint64(len(keys)))
	for _, k := range keys {
		if id, ok := c.ids[k]; ok {
			c.enc.uvarint(uint64(id) + 1)
			continue
		}
		c.ids[k] = uint32(len(c.ids))
		c.enc.u8(0)
		c.enc.str(k)
	}
}

// roundTrip writes the pending request frame and reads the response payload
// into c.dec, returning once the status byte has been consumed and checked.
// Callers must hold c.mu.
func (c *Client) roundTrip() error {
	if _, err := c.conn.Write(c.enc.finish()); err != nil {
		return fmt.Errorf("ps: send: %w", err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		if err == io.EOF {
			return fmt.Errorf("ps: server closed connection")
		}
		return fmt.Errorf("ps: receive: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return fmt.Errorf("ps: response frame exceeds size limit")
	}
	if cap(c.rbuf) < n {
		c.rbuf = make([]byte, n)
	}
	c.rbuf = c.rbuf[:n]
	if _, err := io.ReadFull(c.br, c.rbuf); err != nil {
		return fmt.Errorf("ps: receive: %w", err)
	}
	c.dec.reset(c.rbuf)
	status, err := c.dec.u8()
	if err != nil {
		return fmt.Errorf("ps: receive: %w", err)
	}
	switch status {
	case statusOK:
		return nil
	case statusAppErr:
		msg, err := c.dec.str()
		if err != nil {
			return fmt.Errorf("ps: receive: %w", err)
		}
		return errors.New(msg)
	case statusProtoErr:
		msg, err := c.dec.str()
		if err != nil {
			return fmt.Errorf("ps: receive: %w", err)
		}
		return fmt.Errorf("ps: protocol error: %s", msg)
	default:
		return fmt.Errorf("ps: unknown response status %d", status)
	}
}

// PushOrdered sends worker w's aggregated wave update as parallel key and
// vector slices; it returns the worker's new clock. This is the
// allocation-free form the live runtime uses.
func (c *Client) PushOrdered(w int, keys []string, vecs []tensor.Vector) (int, error) {
	if len(keys) != len(vecs) {
		return 0, fmt.Errorf("ps: %d keys for %d vectors", len(keys), len(vecs))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.begin()
	c.enc.u8(opPush)
	c.enc.uvarint(uint64(w))
	c.encodeKeys(keys)
	for _, v := range vecs {
		c.enc.vec(v)
	}
	if err := c.roundTrip(); err != nil {
		return 0, err
	}
	clock, err := c.dec.uvarint()
	if err != nil {
		return 0, fmt.Errorf("ps: receive: %w", err)
	}
	return int(clock), nil
}

// PullInto fetches the requested keys, blocking server-side until the global
// clock reaches minClock, and fills dst[i] with keys[i]'s weights — reusing
// dst[i]'s storage when its length already matches. It returns the observed
// global clock.
func (c *Client) PullInto(dst []tensor.Vector, keys []string, minClock int) (int, error) {
	if len(dst) != len(keys) {
		return 0, fmt.Errorf("ps: %d destinations for %d keys", len(dst), len(keys))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.begin()
	c.enc.u8(opPull)
	c.enc.uvarint(uint64(minClock))
	c.encodeKeys(keys)
	if err := c.roundTrip(); err != nil {
		return 0, err
	}
	for i := range keys {
		v, err := c.dec.vecInto(dst[i])
		if err != nil {
			return 0, fmt.Errorf("ps: receive: %w", err)
		}
		dst[i] = v
	}
	clock, err := c.dec.uvarint()
	if err != nil {
		return 0, fmt.Errorf("ps: receive: %w", err)
	}
	return int(clock), nil
}

// PullAtInto fetches the clock-versioned snapshot of the requested keys,
// blocking server-side until the global clock reaches `clock`, filling dst
// like PullInto.
func (c *Client) PullAtInto(dst []tensor.Vector, keys []string, clock int) error {
	if len(dst) != len(keys) {
		return fmt.Errorf("ps: %d destinations for %d keys", len(dst), len(keys))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.begin()
	c.enc.u8(opPullAt)
	c.enc.uvarint(uint64(clock))
	c.encodeKeys(keys)
	if err := c.roundTrip(); err != nil {
		return err
	}
	for i := range keys {
		v, err := c.dec.vecInto(dst[i])
		if err != nil {
			return fmt.Errorf("ps: receive: %w", err)
		}
		dst[i] = v
	}
	return nil
}

// Push sends worker w's aggregated wave update as a map; it returns the
// worker's new clock. Convenience form — the ordered form avoids the
// per-call map traffic.
func (c *Client) Push(w int, updates map[string]tensor.Vector) (int, error) {
	keys := make([]string, 0, len(updates))
	vecs := make([]tensor.Vector, 0, len(updates))
	for k, v := range updates {
		keys = append(keys, k)
		vecs = append(vecs, v)
	}
	return c.PushOrdered(w, keys, vecs)
}

// Pull fetches shards as a map, blocking server-side until the global clock
// reaches minClock.
func (c *Client) Pull(keys []string, minClock int) (map[string]tensor.Vector, int, error) {
	dst := make([]tensor.Vector, len(keys))
	clock, err := c.PullInto(dst, keys, minClock)
	if err != nil {
		return nil, 0, err
	}
	out := make(map[string]tensor.Vector, len(keys))
	for i, k := range keys {
		out[k] = dst[i]
	}
	return out, clock, nil
}

// PullAt fetches the clock-versioned snapshot of the requested shards as a
// map, blocking server-side until the global clock reaches `clock`.
func (c *Client) PullAt(keys []string, clock int) (map[string]tensor.Vector, error) {
	dst := make([]tensor.Vector, len(keys))
	if err := c.PullAtInto(dst, keys, clock); err != nil {
		return nil, err
	}
	out := make(map[string]tensor.Vector, len(keys))
	for i, k := range keys {
		out[k] = dst[i]
	}
	return out, nil
}

// GlobalClock queries the server's clock.
func (c *Client) GlobalClock() (int, error) {
	return c.clockOp(opClock)
}

// MaxClockDistance queries the largest clock spread the server has observed.
func (c *Client) MaxClockDistance() (int, error) {
	return c.clockOp(opDistance)
}

func (c *Client) clockOp(op byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.begin()
	c.enc.u8(op)
	if err := c.roundTrip(); err != nil {
		return 0, err
	}
	clock, err := c.dec.uvarint()
	if err != nil {
		return 0, fmt.Errorf("ps: receive: %w", err)
	}
	return int(clock), nil
}

// Meta queries the server's shard layout and worker count.
func (c *Client) Meta() (Meta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.begin()
	c.enc.u8(opMeta)
	if err := c.roundTrip(); err != nil {
		return Meta{}, err
	}
	workers, err := c.dec.uvarint()
	if err != nil {
		return Meta{}, fmt.Errorf("ps: receive: %w", err)
	}
	n, err := c.dec.uvarint()
	if err != nil {
		return Meta{}, fmt.Errorf("ps: receive: %w", err)
	}
	m := Meta{Workers: int(workers), Dims: make(map[string]int, n)}
	for i := uint64(0); i < n; i++ {
		key, err := c.dec.str()
		if err != nil {
			return Meta{}, fmt.Errorf("ps: receive: %w", err)
		}
		dim, err := c.dec.uvarint()
		if err != nil {
			return Meta{}, fmt.Errorf("ps: receive: %w", err)
		}
		m.Dims[key] = int(dim)
	}
	return m, nil
}
