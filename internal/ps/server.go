// Package ps implements the parameter-server substrate HetPipe synchronizes
// through: a sharded key-value store of weight vectors with WSP clock
// semantics.
//
// Each virtual worker pushes one aggregated update per wave (Section 5); the
// server applies updates to the global weights and advances the global clock
// cglobal to c+1 once every worker has pushed wave c. Pulls may specify a
// minimum global clock and block until the server reaches it — that is the
// D-bound wait, which the caller overlaps with pipelined execution.
//
// The store is usable in process (Server methods are goroutine-safe) or over
// TCP with gob encoding (see Serve and Dial in transport.go), mirroring how
// the paper spreads parameter shards across nodes.
//
// The full clock-versioned state checkpoints and restores (checkpoint.go):
// Capture truncates a set of shard servers to a consistent clock cut,
// SaveCheckpoint writes it atomically (temp file + rename, versioned
// header), and a server restored from the file serves bit-identical
// snapshots — the substrate crash recovery and run resumption
// (internal/cluster) build on.
package ps

import (
	"fmt"
	"sync"

	"hetpipe/internal/tensor"
)

// Server is one parameter-server shard host: a set of named weight vectors
// plus WSP clock state for its workers.
//
// Besides the latest weights (Pull), the server retains clock-versioned
// snapshots: the weights as of each global-clock boundary c, defined as the
// initial weights plus every wave-v update with v < c, regardless of push
// arrival order. PullAt reads such a snapshot, which makes the value a pull
// observes a deterministic function of the update schedule — the property
// the sim-vs-live conformance harness (internal/cluster) relies on.
// Materialized snapshots are retained for the whole run (one weight copy
// per clock boundary; per-wave deltas are freed once folded), since the
// server cannot know which old boundary a lagging worker may still demand;
// runs are bounded by their minibatch budget, which bounds this too.
type Server struct {
	mu     sync.Mutex
	cond   *sync.Cond
	shards map[string]tensor.Vector
	// initial holds the registered starting weights, the clock-0 snapshot.
	initial map[string]tensor.Vector
	clocks  []int // clocks[w] = waves pushed by worker w
	// waveDeltas[v][w] is worker w's aggregated update of wave v (nil until
	// pushed); snapshots[c] is the materialized clock-c snapshot, built
	// lazily from waveDeltas in (wave, worker) order so the result does not
	// depend on push arrival order.
	waveDeltas [][]map[string]tensor.Vector
	snapshots  []map[string]tensor.Vector
	// maxDistance is the largest max-min clock spread observed at any push.
	maxDistance int
	pushes      uint64
	pulls       uint64
	closed      bool
}

// NewServer creates a server expecting pushes from n workers.
func NewServer(n int) (*Server, error) {
	if n < 1 {
		return nil, fmt.Errorf("ps: need at least one worker, got %d", n)
	}
	s := &Server{
		shards:  make(map[string]tensor.Vector),
		initial: make(map[string]tensor.Vector),
		clocks:  make([]int, n),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Register installs a named weight vector with initial values. Registering
// an existing key fails — shard layout is fixed before training.
func (s *Server) Register(key string, init []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.shards[key]; ok {
		return fmt.Errorf("ps: shard %q already registered", key)
	}
	s.shards[key] = tensor.Vector(init).Clone()
	s.initial[key] = tensor.Vector(init).Clone()
	return nil
}

// Keys lists registered shard keys (order unspecified).
func (s *Server) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.shards))
	for k := range s.shards {
		out = append(out, k)
	}
	return out
}

// Push applies worker w's aggregated wave update (per-shard deltas added to
// the global weights: wglobal += u~) and advances w's clock. It returns the
// worker's new clock. Waking blocked pulls happens automatically.
func (s *Server) Push(w int, updates map[string]tensor.Vector) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w < 0 || w >= len(s.clocks) {
		return 0, fmt.Errorf("ps: worker %d out of range [0,%d)", w, len(s.clocks))
	}
	for key, delta := range updates {
		shard, ok := s.shards[key]
		if !ok {
			return 0, fmt.Errorf("ps: push to unregistered shard %q", key)
		}
		if len(shard) != len(delta) {
			return 0, fmt.Errorf("ps: shard %q length %d, delta length %d", key, len(shard), len(delta))
		}
	}
	wave := s.clocks[w]
	for len(s.waveDeltas) <= wave {
		s.waveDeltas = append(s.waveDeltas, make([]map[string]tensor.Vector, len(s.clocks)))
	}
	if s.waveDeltas[wave][w] == nil {
		s.waveDeltas[wave][w] = make(map[string]tensor.Vector)
	}
	for key, delta := range updates {
		s.shards[key].AddInPlace(delta)
		s.waveDeltas[wave][w][key] = delta.Clone()
	}
	s.clocks[w]++
	if d := s.distanceLocked(); d > s.maxDistance {
		s.maxDistance = d
	}
	s.pushes++
	s.cond.Broadcast()
	return s.clocks[w], nil
}

func (s *Server) distanceLocked() int {
	min, max := s.clocks[0], s.clocks[0]
	for _, c := range s.clocks[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return max - min
}

// MaxClockDistance reports the largest max-min clock spread across workers
// observed at any push — the live counterpart of the WSP coordinator's
// distance tracking, used to check the D+1 bound.
func (s *Server) MaxClockDistance() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxDistance
}

// GlobalClock reports min over workers of pushed waves.
func (s *Server) GlobalClock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.globalLocked()
}

func (s *Server) globalLocked() int {
	min := s.clocks[0]
	for _, c := range s.clocks[1:] {
		if c < min {
			min = c
		}
	}
	return min
}

// Pull returns copies of the requested shards once the global clock has
// reached minClock, blocking as needed. A minClock of zero never blocks.
// It returns the weights and the global clock observed at read time.
func (s *Server) Pull(keys []string, minClock int) (map[string]tensor.Vector, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.globalLocked() < minClock && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return nil, 0, fmt.Errorf("ps: server closed")
	}
	out := make(map[string]tensor.Vector, len(keys))
	for _, key := range keys {
		shard, ok := s.shards[key]
		if !ok {
			return nil, 0, fmt.Errorf("ps: pull of unregistered shard %q", key)
		}
		out[key] = shard.Clone()
	}
	s.pulls++
	return out, s.globalLocked(), nil
}

// PullAt returns copies of the requested shards as of global-clock boundary
// `clock`: the initial weights plus every wave-v update with v < clock from
// every worker, blocking until the global clock reaches `clock`. Unlike
// Pull, the result is independent of push arrival order — the deterministic
// read the WSP staleness analysis reasons about, and the one the live
// training runtime uses so its trajectory matches the simulator's.
func (s *Server) PullAt(keys []string, clock int) (map[string]tensor.Vector, error) {
	if clock < 0 {
		return nil, fmt.Errorf("ps: negative snapshot clock %d", clock)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.globalLocked() < clock && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return nil, fmt.Errorf("ps: server closed")
	}
	snap, err := s.snapshotLocked(clock)
	if err != nil {
		return nil, err
	}
	out := make(map[string]tensor.Vector, len(keys))
	for _, key := range keys {
		shard, ok := snap[key]
		if !ok {
			return nil, fmt.Errorf("ps: pull of unregistered shard %q", key)
		}
		out[key] = shard.Clone()
	}
	s.pulls++
	return out, nil
}

// snapshotLocked materializes (and caches) the clock-c weight snapshot.
// Requires the global clock to have reached c, so every wave < c is fully
// pushed. Deltas are folded in (wave, worker) order, never arrival order.
func (s *Server) snapshotLocked(c int) (map[string]tensor.Vector, error) {
	if s.globalLocked() < c {
		return nil, fmt.Errorf("ps: snapshot %d ahead of global clock %d", c, s.globalLocked())
	}
	if len(s.snapshots) == 0 {
		base := make(map[string]tensor.Vector, len(s.initial))
		for k, v := range s.initial {
			base[k] = v.Clone()
		}
		s.snapshots = append(s.snapshots, base)
	}
	for len(s.snapshots) <= c {
		wave := len(s.snapshots) - 1
		next := make(map[string]tensor.Vector, len(s.initial))
		for k, v := range s.snapshots[wave] {
			next[k] = v.Clone()
		}
		for w := range s.clocks {
			for k, delta := range s.waveDeltas[wave][w] {
				next[k].AddInPlace(delta)
			}
		}
		// The per-worker deltas of this wave are only ever read by this
		// fold; drop them so a long run retains one snapshot per clock
		// (O(clocks x keys)), not additionally O(workers) delta clones.
		s.waveDeltas[wave] = nil
		s.snapshots = append(s.snapshots, next)
	}
	return s.snapshots[c], nil
}

// Meta describes a server to its clients: the expected worker count and the
// registered shard keys with their lengths. The sharded client fetches it
// once to validate pushes before any shard's clock can advance.
type Meta struct {
	Workers int
	Dims    map[string]int
}

// Meta reports the server's shard layout and worker count.
func (s *Server) Meta() (Meta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Meta{Workers: len(s.clocks), Dims: make(map[string]int, len(s.shards))}
	for k, v := range s.shards {
		m.Dims[k] = len(v)
	}
	return m, nil
}

// Close wakes all blocked pulls with an error and marks the server down.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

// Stats reports operation counters (pushes, pulls).
func (s *Server) Stats() (pushes, pulls uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushes, s.pulls
}
