// Package ps implements the parameter-server substrate HetPipe synchronizes
// through: a sharded key-value store of weight vectors with WSP clock
// semantics.
//
// Each virtual worker pushes one aggregated update per wave (Section 5); the
// server applies updates to the global weights and advances the global clock
// cglobal to c+1 once every worker has pushed wave c. Pulls may specify a
// minimum global clock and block until the server reaches it — that is the
// D-bound wait, which the caller overlaps with pipelined execution.
//
// The store is usable in process (Server methods are goroutine-safe) or over
// TCP with gob encoding (see Serve and Dial in transport.go), mirroring how
// the paper spreads parameter shards across nodes.
package ps

import (
	"fmt"
	"sync"

	"hetpipe/internal/tensor"
)

// Server is one parameter-server shard host: a set of named weight vectors
// plus WSP clock state for its workers.
type Server struct {
	mu     sync.Mutex
	cond   *sync.Cond
	shards map[string]tensor.Vector
	clocks []int // clocks[w] = waves pushed by worker w
	pushes uint64
	pulls  uint64
	closed bool
}

// NewServer creates a server expecting pushes from n workers.
func NewServer(n int) (*Server, error) {
	if n < 1 {
		return nil, fmt.Errorf("ps: need at least one worker, got %d", n)
	}
	s := &Server{
		shards: make(map[string]tensor.Vector),
		clocks: make([]int, n),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Register installs a named weight vector with initial values. Registering
// an existing key fails — shard layout is fixed before training.
func (s *Server) Register(key string, init []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.shards[key]; ok {
		return fmt.Errorf("ps: shard %q already registered", key)
	}
	s.shards[key] = tensor.Vector(init).Clone()
	return nil
}

// Keys lists registered shard keys (order unspecified).
func (s *Server) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.shards))
	for k := range s.shards {
		out = append(out, k)
	}
	return out
}

// Push applies worker w's aggregated wave update (per-shard deltas added to
// the global weights: wglobal += u~) and advances w's clock. It returns the
// worker's new clock. Waking blocked pulls happens automatically.
func (s *Server) Push(w int, updates map[string]tensor.Vector) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w < 0 || w >= len(s.clocks) {
		return 0, fmt.Errorf("ps: worker %d out of range [0,%d)", w, len(s.clocks))
	}
	for key, delta := range updates {
		shard, ok := s.shards[key]
		if !ok {
			return 0, fmt.Errorf("ps: push to unregistered shard %q", key)
		}
		if len(shard) != len(delta) {
			return 0, fmt.Errorf("ps: shard %q length %d, delta length %d", key, len(shard), len(delta))
		}
		shard.AddInPlace(delta)
	}
	s.clocks[w]++
	s.pushes++
	s.cond.Broadcast()
	return s.clocks[w], nil
}

// GlobalClock reports min over workers of pushed waves.
func (s *Server) GlobalClock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.globalLocked()
}

func (s *Server) globalLocked() int {
	min := s.clocks[0]
	for _, c := range s.clocks[1:] {
		if c < min {
			min = c
		}
	}
	return min
}

// Pull returns copies of the requested shards once the global clock has
// reached minClock, blocking as needed. A minClock of zero never blocks.
// It returns the weights and the global clock observed at read time.
func (s *Server) Pull(keys []string, minClock int) (map[string]tensor.Vector, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.globalLocked() < minClock && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return nil, 0, fmt.Errorf("ps: server closed")
	}
	out := make(map[string]tensor.Vector, len(keys))
	for _, key := range keys {
		shard, ok := s.shards[key]
		if !ok {
			return nil, 0, fmt.Errorf("ps: pull of unregistered shard %q", key)
		}
		out[key] = shard.Clone()
	}
	s.pulls++
	return out, s.globalLocked(), nil
}

// Close wakes all blocked pulls with an error and marks the server down.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

// Stats reports operation counters (pushes, pulls).
func (s *Server) Stats() (pushes, pulls uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushes, s.pulls
}
