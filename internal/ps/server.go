// Package ps implements the parameter-server substrate HetPipe synchronizes
// through: a sharded key-value store of weight vectors with WSP clock
// semantics.
//
// Each virtual worker pushes one aggregated update per wave (Section 5); the
// server applies updates to the global weights and advances the global clock
// cglobal to c+1 once every worker has pushed wave c. Pulls may specify a
// minimum global clock and block until the server reaches it — that is the
// D-bound wait, which the caller overlaps with pipelined execution.
//
// The store is usable in process (Server methods are goroutine-safe) or over
// TCP with a length-prefixed binary wire protocol (see wire.go, and Serve
// and Dial in transport.go), mirroring how the paper spreads parameter
// shards across nodes. The ordered method forms (PushOrdered, PullInto,
// PullAtInto) move weights through caller-owned slices with no per-call map
// traffic; the map forms remain as conveniences for cold paths and tests.
//
// The full clock-versioned state checkpoints and restores (checkpoint.go):
// Capture truncates a set of shard servers to a consistent clock cut,
// SaveCheckpoint writes it atomically (temp file + rename, versioned
// header), and a server restored from the file serves bit-identical
// snapshots — the substrate crash recovery and run resumption
// (internal/cluster) build on.
package ps

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hetpipe/internal/tensor"
)

// waveUpdate is one worker's retained aggregated update for one wave: the
// pushed keys in push order, with every delta packed back-to-back in a
// single backing allocation (offsets are implied by the registered shard
// lengths). It replaces the old per-(wave,worker) map of per-key clones —
// one allocation per push instead of one per key.
type waveUpdate struct {
	keys    []string
	backing tensor.Vector
}

// Server is one parameter-server shard host: a set of named weight vectors
// plus WSP clock state for its workers.
//
// Besides the latest weights (Pull), the server retains clock-versioned
// snapshots: the weights as of each global-clock boundary c, defined as the
// initial weights plus every wave-v update with v < c, regardless of push
// arrival order. PullAt reads such a snapshot, which makes the value a pull
// observes a deterministic function of the update schedule — the property
// the sim-vs-live conformance harness (internal/cluster) relies on.
// Materialized snapshots are retained for the whole run (one weight copy
// per clock boundary; per-wave deltas are freed once folded), since the
// server cannot know which old boundary a lagging worker may still demand;
// runs are bounded by their minibatch budget, which bounds this too.
type Server struct {
	mu     sync.Mutex
	cond   *sync.Cond
	shards map[string]tensor.Vector
	// initial holds the registered starting weights, the clock-0 snapshot.
	initial map[string]tensor.Vector
	clocks  []int // clocks[w] = waves pushed by worker w
	// waveDeltas[v*W+w] is worker w's aggregated update of wave v (zero
	// until pushed), stored flat so pushing a new wave costs amortized-zero
	// bookkeeping allocations; snapshots[c] is the materialized clock-c
	// snapshot, built lazily from waveDeltas in (wave, worker) order so the
	// result does not depend on push arrival order.
	waveDeltas []waveUpdate
	snapshots  []map[string]tensor.Vector
	// internedKeys is the key slice of the most recent push. Workers push
	// the same key set wave after wave, so retained waveUpdates share one
	// server-owned slice instead of cloning the caller's per push; the
	// aligned shard vectors and their summed length ride along so a repeat
	// keyset skips the map lookups and the duplicate scan entirely.
	internedKeys   []string
	internedShards []tensor.Vector
	internedTotal  int
	// freeBackings recycles the backing arrays of folded wave deltas into
	// later pushes: in the steady state (pulls folding waves as pushes land)
	// a push costs zero backing allocations, and the recycled array is fully
	// overwritten so it never needs re-zeroing.
	freeBackings []tensor.Vector
	// maxDistance is the largest max-min clock spread observed at any push.
	maxDistance int
	pushes      uint64
	pulls       uint64
	// malformed counts protocol-level garbage seen by the TCP transport:
	// bad preambles, truncated or oversized frames, undecodable requests.
	// Atomic because connection goroutines bump it without taking mu.
	malformed atomic.Uint64
	closed    bool
}

// NewServer creates a server expecting pushes from n workers.
func NewServer(n int) (*Server, error) {
	if n < 1 {
		return nil, fmt.Errorf("ps: need at least one worker, got %d", n)
	}
	s := &Server{
		shards:  make(map[string]tensor.Vector),
		initial: make(map[string]tensor.Vector),
		clocks:  make([]int, n),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Register installs a named weight vector with initial values. Registering
// an existing key fails — shard layout is fixed before training.
func (s *Server) Register(key string, init []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.shards[key]; ok {
		return fmt.Errorf("ps: shard %q already registered", key)
	}
	s.shards[key] = tensor.Vector(init).Clone()
	s.initial[key] = tensor.Vector(init).Clone()
	return nil
}

// Keys lists registered shard keys (order unspecified).
func (s *Server) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.shards))
	for k := range s.shards {
		out = append(out, k)
	}
	return out
}

// PushOrdered applies worker w's aggregated wave update given as parallel
// key and delta slices (per-shard deltas added to the global weights:
// wglobal += u~) and advances w's clock. It returns the worker's new clock.
// Waking blocked pulls happens automatically.
//
// The update is validated in full — worker range, shard existence, lengths,
// duplicate keys — before any weight is touched, so a rejected push leaves
// the server unchanged. The retained wave delta is copied into one backing
// allocation; the caller keeps ownership of keys and vecs.
func (s *Server) PushOrdered(w int, keys []string, vecs []tensor.Vector) (int, error) {
	if len(keys) != len(vecs) {
		return 0, fmt.Errorf("ps: %d keys for %d vectors", len(keys), len(vecs))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w < 0 || w >= len(s.clocks) {
		return 0, fmt.Errorf("ps: worker %d out of range [0,%d)", w, len(s.clocks))
	}
	if !keysEqual(s.internedKeys, keys) {
		if err := s.internPushKeys(keys); err != nil {
			return 0, err
		}
	}
	// The interned shard list is aligned with keys; only the per-vector
	// lengths still need checking on a repeat keyset.
	for i, shard := range s.internedShards {
		if len(shard) != len(vecs[i]) {
			return 0, fmt.Errorf("ps: shard %q length %d, delta length %d", keys[i], len(shard), len(vecs[i]))
		}
	}
	wave := s.clocks[w]
	need := (wave + 1) * len(s.clocks)
	for len(s.waveDeltas) < need {
		s.waveDeltas = append(s.waveDeltas, waveUpdate{})
	}
	u := &s.waveDeltas[wave*len(s.clocks)+w]
	u.keys = s.internedKeys
	u.backing = s.takeBacking(s.internedTotal)
	off := 0
	for i, shard := range s.internedShards {
		tensor.AddCopy(shard, u.backing[off:off+len(shard)], vecs[i])
		off += len(shard)
	}
	s.clocks[w]++
	if d := s.distanceLocked(); d > s.maxDistance {
		s.maxDistance = d
	}
	s.pushes++
	s.cond.Broadcast()
	return s.clocks[w], nil
}

// takeBacking returns a length-n vector for a retained wave delta, reusing
// a recycled backing when one is large enough. Callers overwrite every
// element, so recycled arrays are handed back without zeroing.
//
//hetlint:hotpath
func (s *Server) takeBacking(n int) tensor.Vector {
	for i := len(s.freeBackings) - 1; i >= 0; i-- {
		if b := s.freeBackings[i]; cap(b) >= n {
			s.freeBackings[i] = s.freeBackings[len(s.freeBackings)-1]
			s.freeBackings[len(s.freeBackings)-1] = nil
			s.freeBackings = s.freeBackings[:len(s.freeBackings)-1]
			return b[:n]
		}
	}
	return make(tensor.Vector, n)
}

// takeBackingFrom returns a retained copy of flat, reusing a recycled
// backing when one is large enough; the fresh-allocation path clones via
// append so the new array is written exactly once (no zeroing pass).
//
//hetlint:hotpath
func (s *Server) takeBackingFrom(flat tensor.Vector) tensor.Vector {
	for i := len(s.freeBackings) - 1; i >= 0; i-- {
		if b := s.freeBackings[i]; cap(b) >= len(flat) {
			s.freeBackings[i] = s.freeBackings[len(s.freeBackings)-1]
			s.freeBackings[len(s.freeBackings)-1] = nil
			s.freeBackings = s.freeBackings[:len(s.freeBackings)-1]
			b = b[:len(flat)]
			copy(b, flat)
			return b
		}
	}
	return flat.CloneFast()
}

// previewPush validates worker w's ordered update exactly as PushOrdered
// would and returns the clock it will advance to, without touching any
// weight. The TCP transport uses it to acknowledge a push before applying
// it, overlapping the apply with the acknowledgment's network transit.
// That reordering is invisible to every reader: requests on the same
// connection are handled after the commit, and readers on other
// connections are clock-gated (Pull/PullAt block until the commit
// advances the clock), so nothing can observe the acknowledged-but-
// uncommitted window.
//
//hetlint:hotpath
func (s *Server) previewPush(w int, keys []string, dims []int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.validatePushLocked(w, keys, dims, -1); err != nil {
		return 0, err
	}
	return s.clocks[w] + 1, nil
}

// validatePushLocked checks an ordered push — worker index, keyset
// (interning a new one), per-shard dims, and, when flatLen >= 0, the
// concatenated delta length. It is the shared validation of previewPush
// and pushOrderedFlat, split out unannotated because its fmt formatting
// runs only on the error path.
func (s *Server) validatePushLocked(w int, keys []string, dims []int, flatLen int) error {
	if len(keys) != len(dims) {
		return fmt.Errorf("ps: %d keys for %d vectors", len(keys), len(dims))
	}
	if w < 0 || w >= len(s.clocks) {
		return fmt.Errorf("ps: worker %d out of range [0,%d)", w, len(s.clocks))
	}
	if !keysEqual(s.internedKeys, keys) {
		if err := s.internPushKeys(keys); err != nil {
			return err
		}
	}
	for i, shard := range s.internedShards {
		if len(shard) != dims[i] {
			return fmt.Errorf("ps: shard %q length %d, delta length %d", keys[i], len(shard), dims[i])
		}
	}
	if flatLen >= 0 && flatLen != s.internedTotal {
		return fmt.Errorf("ps: flat delta length %d, want %d", flatLen, s.internedTotal)
	}
	return nil
}

// pushOrderedFlat is PushOrdered for a delta arriving as consecutive
// key-order segments of one contiguous vector — the TCP transport's decode
// layout. Retaining the wave delta is then a single streaming clone of
// flat (no zeroing, no per-key scatter), the dominant cost of a push once
// the wire codec runs at memcpy speed.
//
//hetlint:hotpath
func (s *Server) pushOrderedFlat(w int, keys []string, dims []int, flat tensor.Vector) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.validatePushLocked(w, keys, dims, len(flat)); err != nil {
		return 0, err
	}
	wave := s.clocks[w]
	need := (wave + 1) * len(s.clocks)
	for len(s.waveDeltas) < need {
		s.waveDeltas = append(s.waveDeltas, waveUpdate{})
	}
	u := &s.waveDeltas[wave*len(s.clocks)+w]
	u.keys = s.internedKeys
	u.backing = s.takeBackingFrom(flat)
	off := 0
	for _, shard := range s.internedShards {
		shard.AddInPlace(flat[off : off+len(shard)])
		off += len(shard)
	}
	s.clocks[w]++
	if d := s.distanceLocked(); d > s.maxDistance {
		s.maxDistance = d
	}
	s.pushes++
	s.cond.Broadcast()
	return s.clocks[w], nil
}

// internPushKeys validates a new push keyset — shard existence, duplicate
// keys — and caches a server-owned copy with the aligned shard vectors.
// Workers push the same shard set wave after wave, so this runs once per
// keyset change, not per push; retained waveUpdates share the server-owned
// slice and never alias caller memory (callers recycle their slices).
func (s *Server) internPushKeys(keys []string) error {
	for i, key := range keys {
		if _, ok := s.shards[key]; !ok {
			return fmt.Errorf("ps: push to unregistered shard %q", key)
		}
		for j := 0; j < i; j++ {
			if keys[j] == key {
				return fmt.Errorf("ps: duplicate shard %q in push", key)
			}
		}
	}
	s.internedKeys = append([]string(nil), keys...)
	s.internedShards = make([]tensor.Vector, len(keys))
	s.internedTotal = 0
	for i, key := range keys {
		s.internedShards[i] = s.shards[key]
		s.internedTotal += len(s.shards[key])
	}
	return nil
}

// Push applies worker w's aggregated wave update given as a map. Map-form
// convenience over PushOrdered; the ordered form avoids the per-call
// conversion.
func (s *Server) Push(w int, updates map[string]tensor.Vector) (int, error) {
	keys := make([]string, 0, len(updates))
	vecs := make([]tensor.Vector, 0, len(updates))
	for k, v := range updates {
		keys = append(keys, k)
		vecs = append(vecs, v)
	}
	return s.PushOrdered(w, keys, vecs)
}

func (s *Server) distanceLocked() int {
	min, max := s.clocks[0], s.clocks[0]
	for _, c := range s.clocks[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return max - min
}

// MaxClockDistance reports the largest max-min clock spread across workers
// observed at any push — the live counterpart of the WSP coordinator's
// distance tracking, used to check the D+1 bound.
func (s *Server) MaxClockDistance() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxDistance
}

// GlobalClock reports min over workers of pushed waves.
func (s *Server) GlobalClock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.globalLocked()
}

func (s *Server) globalLocked() int {
	min := s.clocks[0]
	for _, c := range s.clocks[1:] {
		if c < min {
			min = c
		}
	}
	return min
}

// PullInto copies the requested shards into dst (dst[i] receives keys[i],
// reusing dst[i]'s storage when its length already matches) once the global
// clock has reached minClock, blocking as needed. A minClock of zero never
// blocks. It returns the global clock observed at read time.
func (s *Server) PullInto(dst []tensor.Vector, keys []string, minClock int) (int, error) {
	if len(dst) != len(keys) {
		return 0, fmt.Errorf("ps: %d destinations for %d keys", len(dst), len(keys))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.globalLocked() < minClock && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return 0, fmt.Errorf("ps: server closed")
	}
	for i, key := range keys {
		shard, ok := s.shards[key]
		if !ok {
			return 0, fmt.Errorf("ps: pull of unregistered shard %q", key)
		}
		if len(dst[i]) != len(shard) {
			dst[i] = make(tensor.Vector, len(shard))
		}
		copy(dst[i], shard)
	}
	s.pulls++
	return s.globalLocked(), nil
}

// Pull returns copies of the requested shards once the global clock has
// reached minClock, blocking as needed. Map-form convenience over PullInto.
func (s *Server) Pull(keys []string, minClock int) (map[string]tensor.Vector, int, error) {
	dst := make([]tensor.Vector, len(keys))
	clock, err := s.PullInto(dst, keys, minClock)
	if err != nil {
		return nil, 0, err
	}
	out := make(map[string]tensor.Vector, len(keys))
	for i, k := range keys {
		out[k] = dst[i]
	}
	return out, clock, nil
}

// PullAtInto copies the requested shards as of global-clock boundary
// `clock` into dst — the initial weights plus every wave-v update with
// v < clock from every worker — blocking until the global clock reaches
// `clock`. Unlike PullInto, the result is independent of push arrival
// order: the deterministic read the WSP staleness analysis reasons about,
// and the one the live training runtime uses so its trajectory matches the
// simulator's.
func (s *Server) PullAtInto(dst []tensor.Vector, keys []string, clock int) error {
	if len(dst) != len(keys) {
		return fmt.Errorf("ps: %d destinations for %d keys", len(dst), len(keys))
	}
	if clock < 0 {
		return fmt.Errorf("ps: negative snapshot clock %d", clock)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.globalLocked() < clock && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return fmt.Errorf("ps: server closed")
	}
	snap, err := s.snapshotLocked(clock)
	if err != nil {
		return err
	}
	for i, key := range keys {
		shard, ok := snap[key]
		if !ok {
			return fmt.Errorf("ps: pull of unregistered shard %q", key)
		}
		if len(dst[i]) != len(shard) {
			dst[i] = make(tensor.Vector, len(shard))
		}
		copy(dst[i], shard)
	}
	s.pulls++
	return nil
}

// PullAt returns copies of the requested shards as of global-clock boundary
// `clock`. Map-form convenience over PullAtInto.
func (s *Server) PullAt(keys []string, clock int) (map[string]tensor.Vector, error) {
	dst := make([]tensor.Vector, len(keys))
	if err := s.PullAtInto(dst, keys, clock); err != nil {
		return nil, err
	}
	out := make(map[string]tensor.Vector, len(keys))
	for i, k := range keys {
		out[k] = dst[i]
	}
	return out, nil
}

// vecSink receives weight vectors during a locked pull view. The TCP
// transport implements it to encode responses straight from server-owned
// storage — no intermediate clone, no map. The vector passed to visit is
// only valid for the duration of the call.
type vecSink interface {
	visit(i int, key string, v tensor.Vector) error
}

// pullView is PullInto without the copy: once the global clock has reached
// minClock it visits the requested shards in key order, under the server
// lock, and returns the observed global clock.
func (s *Server) pullView(keys []string, minClock int, sink vecSink) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.globalLocked() < minClock && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return 0, fmt.Errorf("ps: server closed")
	}
	for i, key := range keys {
		shard, ok := s.shards[key]
		if !ok {
			return 0, fmt.Errorf("ps: pull of unregistered shard %q", key)
		}
		if err := sink.visit(i, key, shard); err != nil {
			return 0, err
		}
	}
	s.pulls++
	return s.globalLocked(), nil
}

// pullAtView is PullAtInto without the copy: it visits the clock-`clock`
// snapshot of the requested shards in key order, under the server lock.
func (s *Server) pullAtView(keys []string, clock int, sink vecSink) error {
	if clock < 0 {
		return fmt.Errorf("ps: negative snapshot clock %d", clock)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.globalLocked() < clock && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return fmt.Errorf("ps: server closed")
	}
	snap, err := s.snapshotLocked(clock)
	if err != nil {
		return err
	}
	for i, key := range keys {
		shard, ok := snap[key]
		if !ok {
			return fmt.Errorf("ps: pull of unregistered shard %q", key)
		}
		if err := sink.visit(i, key, shard); err != nil {
			return err
		}
	}
	s.pulls++
	return nil
}

// waitClock blocks until the global clock reaches c (or the server closes).
// The transport's snapshot cache uses it to honor the D-bound before
// serving a pre-encoded snapshot frame.
func (s *Server) waitClock(c int) error {
	if c < 0 {
		return fmt.Errorf("ps: negative snapshot clock %d", c)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.globalLocked() < c && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return fmt.Errorf("ps: server closed")
	}
	return nil
}

// countCachedPull records a pull served from the transport's snapshot cache
// so Stats counts it like any other pull.
func (s *Server) countCachedPull() {
	s.mu.Lock()
	s.pulls++
	s.mu.Unlock()
}

// snapshotLocked materializes (and caches) the clock-c weight snapshot.
// Requires the global clock to have reached c, so every wave < c is fully
// pushed. Deltas are folded in (wave, worker) order, never arrival order.
func (s *Server) snapshotLocked(c int) (map[string]tensor.Vector, error) {
	if s.globalLocked() < c {
		return nil, fmt.Errorf("ps: snapshot %d ahead of global clock %d", c, s.globalLocked())
	}
	if len(s.snapshots) == 0 {
		base := make(map[string]tensor.Vector, len(s.initial))
		for k, v := range s.initial {
			base[k] = v.Clone()
		}
		s.snapshots = append(s.snapshots, base)
	}
	for len(s.snapshots) <= c {
		wave := len(s.snapshots) - 1
		next := make(map[string]tensor.Vector, len(s.initial))
		for k, v := range s.snapshots[wave] {
			next[k] = v.Clone()
		}
		base := wave * len(s.clocks)
		for w := range s.clocks {
			u := &s.waveDeltas[base+w]
			off := 0
			for _, k := range u.keys {
				v := next[k]
				v.AddInPlace(u.backing[off : off+len(v)])
				off += len(v)
			}
			// This fold is the only reader of the wave's per-worker deltas;
			// drop them so a long run retains one snapshot per clock
			// (O(clocks x keys)), not additionally O(workers) delta copies.
			// The backing is recycled into later pushes (bounded by one
			// spare per worker — beyond that GC takes them).
			if u.backing != nil && len(s.freeBackings) < len(s.clocks) {
				s.freeBackings = append(s.freeBackings, u.backing)
			}
			*u = waveUpdate{}
		}
		s.snapshots = append(s.snapshots, next)
	}
	return s.snapshots[c], nil
}

// Meta describes a server to its clients: the expected worker count and the
// registered shard keys with their lengths. The sharded client fetches it
// once to validate pushes before any shard's clock can advance.
type Meta struct {
	Workers int
	Dims    map[string]int
}

// Meta reports the server's shard layout and worker count.
func (s *Server) Meta() (Meta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Meta{Workers: len(s.clocks), Dims: make(map[string]int, len(s.shards))}
	for k, v := range s.shards {
		m.Dims[k] = len(v)
	}
	return m, nil
}

// Close wakes all blocked pulls with an error and marks the server down.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

// Stats reports operation counters (pushes, pulls).
func (s *Server) Stats() (pushes, pulls uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushes, s.pulls
}

// noteMalformed counts one protocol-level malformed request.
func (s *Server) noteMalformed() {
	s.malformed.Add(1)
}

// MalformedRequests reports how many protocol-level malformed requests the
// TCP transport has rejected on this server's behalf: bad preambles,
// truncated or oversized frames, and undecodable request payloads.
func (s *Server) MalformedRequests() uint64 {
	return s.malformed.Load()
}
