package ps

import (
	"testing"

	"hetpipe/internal/tensor"
)

// newAllocFixture builds a 4-server sharded deployment with per-chunk
// ordered scratch, mirroring the live runtime's steady-state shapes.
func newAllocFixture(t *testing.T) (*Sharded, []string, []tensor.Vector, []tensor.Vector) {
	t.Helper()
	const servers = 4
	const nkeys = 8
	const dim = 64
	keys := make([]string, nkeys)
	push := make([]tensor.Vector, nkeys)
	dst := make([]tensor.Vector, nkeys)
	for i := range keys {
		keys[i] = string(rune('a' + i))
		push[i] = make(tensor.Vector, dim)
		dst[i] = make(tensor.Vector, dim)
		for j := range push[i] {
			push[i][j] = float64(i*dim+j) * 1e-3
		}
	}
	pl, err := RoundRobin(keys, servers)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]Backend, servers)
	for i := range backends {
		s, err := NewServer(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range pl.KeysOn(i) {
			if err := s.Register(k, make([]float64, dim)); err != nil {
				t.Fatal(err)
			}
		}
		backends[i] = AdaptServer(s)
	}
	sh, err := NewSharded(pl, backends)
	if err != nil {
		t.Fatal(err)
	}
	return sh, keys, push, dst
}

// TestShardedInprocAllocsPinned pins the in-process data-plane fix: the old
// path cloned every weight map key-by-key on the server AND merged it into a
// second identical map client-side (tens of allocations per op). The ordered
// path must stay at one retained wave-delta backing per involved server on
// push and zero steady-state allocations on snapshot pulls.
func TestShardedInprocAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not representative under the race detector")
	}
	sh, keys, push, dst := newAllocFixture(t)

	// Warm the pools and materialize the first snapshot off-measurement.
	if err := sh.PushOrdered(0, keys, push); err != nil {
		t.Fatal(err)
	}
	if err := sh.PullAtInto(dst, keys, 1); err != nil {
		t.Fatal(err)
	}

	pushAllocs := testing.AllocsPerRun(100, func() {
		if err := sh.PushOrdered(0, keys, push); err != nil {
			t.Fatal(err)
		}
	})
	// One backing array per involved server (4), plus amortized growth of
	// the servers' flat wave-delta slots.
	if pushAllocs > 5 {
		t.Errorf("sharded in-process PushOrdered = %.1f allocs/op, want <= 5", pushAllocs)
	}

	pullAllocs := testing.AllocsPerRun(100, func() {
		if err := sh.PullAtInto(dst, keys, 1); err != nil {
			t.Fatal(err)
		}
	})
	// Reused destinations, pooled fan-out scratch, cached snapshot: the
	// steady state must not allocate at all (1 leaves slack for runtime
	// noise such as goroutine stack growth).
	if pullAllocs > 1 {
		t.Errorf("sharded in-process PullAtInto = %.1f allocs/op, want <= 1", pullAllocs)
	}
}
