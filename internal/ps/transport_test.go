package ps

import (
	"encoding/gob"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hetpipe/internal/tensor"
)

// serveFixture starts a TCP-served server with one registered shard and
// returns the server, its address, and a cleanup-registered listener.
func serveFixture(t *testing.T, workers int) (*Server, string) {
	t.Helper()
	s, err := NewServer(workers)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("w", []float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		Serve(l, s)
		close(served)
	}()
	t.Cleanup(func() {
		l.Close()
		<-served
	})
	return s, l.Addr().String()
}

func TestTCPCloseDuringBlockedPullReturnsServerClosed(t *testing.T) {
	s, addr := serveFixture(t, 2)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Pull([]string{"w"}, 5)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("pull returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	s.Close()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "server closed") {
			t.Fatalf("blocked pull error = %v, want server closed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked pull never unblocked after Close")
	}
}

func TestTCPCloseDuringBlockedPullAtReturnsServerClosed(t *testing.T) {
	s, addr := serveFixture(t, 2)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.PullAt([]string{"w"}, 3)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("snapshot pull returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	s.Close()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "server closed") {
			t.Fatalf("blocked PullAt error = %v, want server closed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked PullAt never unblocked after Close")
	}
}

func TestTCPGarbageRequestDropsOnlyThatConnection(t *testing.T) {
	_, addr := serveFixture(t, 1)
	good, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, err := good.Push(0, map[string]tensor.Vector{"w": {1, 1}}); err != nil {
		t.Fatal(err)
	}

	// A raw connection that sends bytes gob cannot decode: the server must
	// drop it without killing the listener or other connections.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("definitely not gob\n")); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Error("garbage connection got a response, want drop")
	}
	raw.Close()

	// An unknown-but-well-formed op gets an error response instead.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(&wireRequest{Op: 99}); err != nil {
		t.Fatal(err)
	}
	var resp wireResponse
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Err, "unknown op") {
		t.Errorf("unknown op response = %q", resp.Err)
	}

	// The healthy client still works after both bad peers.
	if g, err := good.GlobalClock(); err != nil || g != 1 {
		t.Errorf("healthy client after garbage peer: clock=%d err=%v", g, err)
	}
}

func TestTCPConcurrentPushersAndPullers(t *testing.T) {
	// Hammer one server with concurrent pushers and snapshot pullers over
	// separate connections; meant to run under -race.
	const workers = 4
	const waves = 12
	_, addr := serveFixture(t, workers)
	var wg sync.WaitGroup
	errs := make(chan error, 2*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for v := 0; v < waves; v++ {
				if _, err := c.Push(w, map[string]tensor.Vector{"w": {1, 1}}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for v := 1; v <= waves; v++ {
				snap, err := c.PullAt([]string{"w"}, v)
				if err != nil {
					errs <- err
					return
				}
				if got, want := snap["w"][0], float64(workers*v); got != want {
					errs <- fmt.Errorf("snapshot at clock %d = %g, want %g", v, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
