package ps

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hetpipe/internal/tensor"
)

// serveFixture starts a TCP-served server with one registered shard and
// returns the server, its address, and a cleanup-registered listener.
func serveFixture(t *testing.T, workers int) (*Server, string) {
	t.Helper()
	s, err := NewServer(workers)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("w", []float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		Serve(l, s)
		close(served)
	}()
	t.Cleanup(func() {
		l.Close()
		<-served
	})
	return s, l.Addr().String()
}

func TestTCPCloseDuringBlockedPullReturnsServerClosed(t *testing.T) {
	s, addr := serveFixture(t, 2)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Pull([]string{"w"}, 5)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("pull returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	s.Close()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "server closed") {
			t.Fatalf("blocked pull error = %v, want server closed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked pull never unblocked after Close")
	}
}

func TestTCPCloseDuringBlockedPullAtReturnsServerClosed(t *testing.T) {
	s, addr := serveFixture(t, 2)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.PullAt([]string{"w"}, 3)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("snapshot pull returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	s.Close()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "server closed") {
			t.Fatalf("blocked PullAt error = %v, want server closed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked PullAt never unblocked after Close")
	}
}

// readRawFrame reads one length-prefixed response frame off a raw conn.
func readRawFrame(t *testing.T, conn net.Conn) []byte {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatalf("reading response frame header: %v", err)
	}
	payload := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(conn, payload); err != nil {
		t.Fatalf("reading response frame payload: %v", err)
	}
	return payload
}

func TestTCPGarbageRequestDropsOnlyThatConnection(t *testing.T) {
	s, addr := serveFixture(t, 1)
	good, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, err := good.Push(0, map[string]tensor.Vector{"w": {1, 1}}); err != nil {
		t.Fatal(err)
	}

	// A raw connection that opens with bytes that are not the protocol
	// preamble: the server must answer with a protocol-error frame, count the
	// request as malformed, and drop only that connection.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("definitely not the preamble, and then some")); err != nil {
		t.Fatal(err)
	}
	payload := readRawFrame(t, raw)
	if len(payload) == 0 || payload[0] != statusProtoErr {
		t.Fatalf("garbage preamble response = %v, want statusProtoErr frame", payload)
	}
	if !strings.Contains(string(payload[1:]), "magic") {
		t.Errorf("garbage preamble message = %q, want bad-magic complaint", payload[1:])
	}
	raw.Close()
	if got := s.MalformedRequests(); got != 1 {
		t.Errorf("MalformedRequests after garbage preamble = %d, want 1", got)
	}

	// An unknown-but-well-framed op gets a protocol error response and is
	// counted, but the framing is intact so the connection survives.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var e encoder
	frame := appendPreamble(nil)
	e.begin()
	e.u8(99)
	frame = append(frame, e.finish()...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	payload = readRawFrame(t, conn)
	if len(payload) == 0 || payload[0] != statusProtoErr {
		t.Fatalf("unknown op response = %v, want statusProtoErr frame", payload)
	}
	if !strings.Contains(string(payload[1:]), "unknown op") {
		t.Errorf("unknown op message = %q", payload[1:])
	}
	if got := s.MalformedRequests(); got != 2 {
		t.Errorf("MalformedRequests after unknown op = %d, want 2", got)
	}
	// Same connection, now a valid request: the server kept it alive.
	e.begin()
	e.u8(opClock)
	if _, err := conn.Write(e.finish()); err != nil {
		t.Fatal(err)
	}
	payload = readRawFrame(t, conn)
	if len(payload) == 0 || payload[0] != statusOK {
		t.Fatalf("clock after unknown op = %v, want statusOK frame", payload)
	}

	// The healthy client still works after both bad peers.
	if g, err := good.GlobalClock(); err != nil || g != 1 {
		t.Errorf("healthy client after garbage peer: clock=%d err=%v", g, err)
	}

	// A client that disconnects cleanly between frames is NOT malformed.
	bye, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bye.GlobalClock(); err != nil {
		t.Fatal(err)
	}
	bye.Close()
	waitForStableMalformed(t, s, 2)
}

// waitForStableMalformed asserts the malformed counter settles at want,
// giving server goroutines a moment to notice connection shutdowns.
func waitForStableMalformed(t *testing.T, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if s.MalformedRequests() == want {
			time.Sleep(10 * time.Millisecond) // linger: catch a late bump
			if got := s.MalformedRequests(); got != want {
				t.Fatalf("MalformedRequests = %d, want %d", got, want)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("MalformedRequests = %d, want %d", s.MalformedRequests(), want)
}

func TestTCPConcurrentPushersAndPullers(t *testing.T) {
	// Hammer one server with concurrent pushers and snapshot pullers over
	// separate connections; meant to run under -race.
	const workers = 4
	const waves = 12
	_, addr := serveFixture(t, workers)
	var wg sync.WaitGroup
	errs := make(chan error, 2*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for v := 0; v < waves; v++ {
				if _, err := c.Push(w, map[string]tensor.Vector{"w": {1, 1}}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for v := 1; v <= waves; v++ {
				snap, err := c.PullAt([]string{"w"}, v)
				if err != nil {
					errs <- err
					return
				}
				if got, want := snap["w"][0], float64(workers*v); got != want {
					errs <- fmt.Errorf("snapshot at clock %d = %g, want %g", v, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
