package ps

import (
	"sync"
	"testing"
	"time"

	"hetpipe/internal/tensor"
)

func shardedFixture(t *testing.T, workers int) (*Sharded, []*Server, []string) {
	t.Helper()
	keys := []string{"stage0", "stage1", "stage2", "stage3"}
	pl, err := RoundRobin(keys, 2)
	if err != nil {
		t.Fatal(err)
	}
	var servers []*Server
	var backends []Backend
	for i := 0; i < 2; i++ {
		s, err := NewServer(workers)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range pl.KeysOn(i) {
			if err := s.Register(k, []float64{0, 0}); err != nil {
				t.Fatal(err)
			}
		}
		servers = append(servers, s)
		backends = append(backends, AdaptServer(s))
	}
	sh, err := NewSharded(pl, backends)
	if err != nil {
		t.Fatal(err)
	}
	return sh, servers, keys
}

func TestShardedPushPullRoundTrip(t *testing.T) {
	sh, _, keys := shardedFixture(t, 1)
	updates := map[string]tensor.Vector{}
	for i, k := range keys {
		updates[k] = tensor.Vector{float64(i), 1}
	}
	if err := sh.Push(0, updates); err != nil {
		t.Fatal(err)
	}
	got, clock, err := sh.Pull(keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if clock != 1 {
		t.Errorf("clock = %d, want 1", clock)
	}
	for i, k := range keys {
		if got[k][0] != float64(i) || got[k][1] != 1 {
			t.Errorf("shard %s = %v", k, got[k])
		}
	}
}

func TestShardedClockIsMinAcrossServers(t *testing.T) {
	sh, servers, keys := shardedFixture(t, 2)
	// Worker 0 pushes everywhere; worker 1 has not pushed yet.
	updates := map[string]tensor.Vector{}
	for _, k := range keys {
		updates[k] = tensor.Vector{1, 1}
	}
	if err := sh.Push(0, updates); err != nil {
		t.Fatal(err)
	}
	if c, _ := sh.GlobalClock(); c != 0 {
		t.Errorf("global clock = %d, want 0 (worker 1 lags)", c)
	}
	if err := sh.Push(1, updates); err != nil {
		t.Fatal(err)
	}
	if c, _ := sh.GlobalClock(); c != 1 {
		t.Errorf("global clock = %d, want 1", c)
	}
	for i, s := range servers {
		if s.GlobalClock() != 1 {
			t.Errorf("server %d clock = %d, want 1 (empty pushes keep clocks aligned)", i, s.GlobalClock())
		}
	}
}

func TestShardedPartialKeyPush(t *testing.T) {
	// Pushing only stage0 still ticks both servers' clocks for the worker,
	// so the WSP global clock stays well defined.
	sh, servers, _ := shardedFixture(t, 1)
	if err := sh.Push(0, map[string]tensor.Vector{"stage0": {1, 1}}); err != nil {
		t.Fatal(err)
	}
	for i, s := range servers {
		if s.GlobalClock() != 1 {
			t.Errorf("server %d clock = %d after partial push", i, s.GlobalClock())
		}
	}
}

func TestShardedValidation(t *testing.T) {
	pl, _ := RoundRobin([]string{"a"}, 2)
	if _, err := NewSharded(nil, nil); err == nil {
		t.Error("nil placement accepted")
	}
	if _, err := NewSharded(pl, nil); err == nil {
		t.Error("backend count mismatch accepted")
	}
	sh, _, _ := shardedFixture(t, 1)
	if err := sh.Push(0, map[string]tensor.Vector{"unknown": {1}}); err == nil {
		t.Error("unplaced key accepted on push")
	}
	if _, _, err := sh.Pull([]string{"unknown"}, 0); err == nil {
		t.Error("unplaced key accepted on pull")
	}
}

func TestShardedPushFailureLeavesClocksUnchanged(t *testing.T) {
	// A push that cannot land in full must not advance any shard's clock:
	// before the client-side validation, backends 0..i-1 would have already
	// ticked when backend i rejected, permanently desynchronizing the shards.
	sh, servers, keys := shardedFixture(t, 2)
	bad := []map[string]tensor.Vector{
		{"stage0": {1, 1}, "unplaced": {1}},     // unplaced key
		{"stage0": {1, 1}, "stage3": {1, 2, 3}}, // length mismatch on a later server's key
		{"stage0": {1, 1, 1}},                   // length mismatch on the first key
	}
	for i, updates := range bad {
		if err := sh.Push(0, updates); err == nil {
			t.Fatalf("bad push %d accepted", i)
		}
		for srv, s := range servers {
			if c := s.GlobalClock(); c != 0 {
				t.Fatalf("bad push %d advanced server %d clock to %d", i, srv, c)
			}
			pushes, _ := s.Stats()
			if pushes != 0 {
				t.Fatalf("bad push %d reached server %d", i, srv)
			}
		}
	}
	if err := sh.Push(-1, map[string]tensor.Vector{keys[0]: {1, 1}}); err == nil {
		t.Error("negative worker accepted")
	}
	if err := sh.Push(2, map[string]tensor.Vector{keys[0]: {1, 1}}); err == nil {
		t.Error("out-of-range worker accepted")
	}
	// A valid push still works after the rejections.
	if err := sh.Push(0, map[string]tensor.Vector{keys[0]: {1, 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedPullClockNeverRegresses(t *testing.T) {
	sh, _, keys := shardedFixture(t, 1)
	updates := map[string]tensor.Vector{}
	for _, k := range keys {
		updates[k] = tensor.Vector{1, 1}
	}
	if err := sh.Push(0, updates); err != nil {
		t.Fatal(err)
	}
	// Empty key set degenerates to a global-clock query, not clock 0.
	_, clock, err := sh.Pull(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if clock != 1 {
		t.Errorf("empty pull clock = %d, want 1 (global clock)", clock)
	}
	// A pull touching a single server still reports the min over ALL shard
	// servers, so it can never exceed what a later full pull observes.
	full, fullClock, err := sh.Pull(keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, subClock, err := sh.Pull(keys[:1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if subClock > fullClock {
		t.Errorf("subset pull clock %d exceeds full pull clock %d", subClock, fullClock)
	}
	if len(full) != len(keys) {
		t.Errorf("full pull returned %d keys, want %d", len(full), len(keys))
	}
}

func TestShardedPullAtReturnsClockSnapshot(t *testing.T) {
	sh, _, keys := shardedFixture(t, 2)
	push := func(w int, val float64) {
		t.Helper()
		updates := map[string]tensor.Vector{}
		for _, k := range keys {
			updates[k] = tensor.Vector{val, val}
		}
		if err := sh.Push(w, updates); err != nil {
			t.Fatal(err)
		}
	}
	push(0, 1) // worker 0, wave 0
	push(1, 2) // worker 1, wave 0 -> global clock 1
	push(0, 4) // worker 0, wave 1 (ahead of the clock)
	// Snapshot at clock 1 contains exactly the wave-0 updates, even though a
	// wave-1 push has already been applied to the latest weights.
	snap, err := sh.PullAt(keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if snap[k][0] != 3 {
			t.Errorf("snapshot at clock 1, shard %s = %v, want 3", k, snap[k])
		}
	}
	// Snapshot at clock 0 is the initial weights.
	snap0, err := sh.PullAt(keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if snap0[k][0] != 0 {
			t.Errorf("snapshot at clock 0, shard %s = %v, want 0", k, snap0[k])
		}
	}
	// The latest weights include everything pushed so far.
	latest, _, err := sh.Pull(keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if latest[k][0] != 7 {
			t.Errorf("latest shard %s = %v, want 7", k, latest[k])
		}
	}
	if d, _ := sh.MaxClockDistance(); d != 1 {
		t.Errorf("max clock distance = %d, want 1", d)
	}
}

func TestShardedPullAtBlocksUntilClock(t *testing.T) {
	sh, _, keys := shardedFixture(t, 2)
	done := make(chan map[string]tensor.Vector, 1)
	go func() {
		snap, err := sh.PullAt(keys, 1)
		if err != nil {
			t.Error(err)
		}
		done <- snap
	}()
	updates := map[string]tensor.Vector{}
	for _, k := range keys {
		updates[k] = tensor.Vector{1, 1}
	}
	if err := sh.Push(0, updates); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
		t.Fatal("PullAt(clock=1) returned before every worker pushed wave 0")
	case <-time.After(20 * time.Millisecond):
	}
	if err := sh.Push(1, updates); err != nil {
		t.Fatal(err)
	}
	snap := <-done
	for _, k := range keys {
		if snap[k][0] != 2 {
			t.Errorf("snapshot shard %s = %v, want 2", k, snap[k])
		}
	}
}

func TestShardedConcurrentWorkers(t *testing.T) {
	sh, _, keys := shardedFixture(t, 4)
	var wg sync.WaitGroup
	const waves = 20
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < waves; c++ {
				updates := map[string]tensor.Vector{}
				for _, k := range keys {
					updates[k] = tensor.Vector{1, 0}
				}
				if err := sh.Push(w, updates); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, clock, err := sh.Pull(keys, waves)
	if err != nil {
		t.Fatal(err)
	}
	if clock != waves {
		t.Errorf("clock = %d, want %d", clock, waves)
	}
	for _, k := range keys {
		if got[k][0] != 4*waves {
			t.Errorf("shard %s = %v, want %d", k, got[k][0], 4*waves)
		}
	}
}
