package ps

import (
	"sync"
	"testing"

	"hetpipe/internal/tensor"
)

func shardedFixture(t *testing.T, workers int) (*Sharded, []*Server, []string) {
	t.Helper()
	keys := []string{"stage0", "stage1", "stage2", "stage3"}
	pl, err := RoundRobin(keys, 2)
	if err != nil {
		t.Fatal(err)
	}
	var servers []*Server
	var backends []Backend
	for i := 0; i < 2; i++ {
		s, err := NewServer(workers)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range pl.KeysOn(i) {
			if err := s.Register(k, []float64{0, 0}); err != nil {
				t.Fatal(err)
			}
		}
		servers = append(servers, s)
		backends = append(backends, AdaptServer(s))
	}
	sh, err := NewSharded(pl, backends)
	if err != nil {
		t.Fatal(err)
	}
	return sh, servers, keys
}

func TestShardedPushPullRoundTrip(t *testing.T) {
	sh, _, keys := shardedFixture(t, 1)
	updates := map[string]tensor.Vector{}
	for i, k := range keys {
		updates[k] = tensor.Vector{float64(i), 1}
	}
	if err := sh.Push(0, updates); err != nil {
		t.Fatal(err)
	}
	got, clock, err := sh.Pull(keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if clock != 1 {
		t.Errorf("clock = %d, want 1", clock)
	}
	for i, k := range keys {
		if got[k][0] != float64(i) || got[k][1] != 1 {
			t.Errorf("shard %s = %v", k, got[k])
		}
	}
}

func TestShardedClockIsMinAcrossServers(t *testing.T) {
	sh, servers, keys := shardedFixture(t, 2)
	// Worker 0 pushes everywhere; worker 1 has not pushed yet.
	updates := map[string]tensor.Vector{}
	for _, k := range keys {
		updates[k] = tensor.Vector{1, 1}
	}
	if err := sh.Push(0, updates); err != nil {
		t.Fatal(err)
	}
	if c, _ := sh.GlobalClock(); c != 0 {
		t.Errorf("global clock = %d, want 0 (worker 1 lags)", c)
	}
	if err := sh.Push(1, updates); err != nil {
		t.Fatal(err)
	}
	if c, _ := sh.GlobalClock(); c != 1 {
		t.Errorf("global clock = %d, want 1", c)
	}
	for i, s := range servers {
		if s.GlobalClock() != 1 {
			t.Errorf("server %d clock = %d, want 1 (empty pushes keep clocks aligned)", i, s.GlobalClock())
		}
	}
}

func TestShardedPartialKeyPush(t *testing.T) {
	// Pushing only stage0 still ticks both servers' clocks for the worker,
	// so the WSP global clock stays well defined.
	sh, servers, _ := shardedFixture(t, 1)
	if err := sh.Push(0, map[string]tensor.Vector{"stage0": {1, 1}}); err != nil {
		t.Fatal(err)
	}
	for i, s := range servers {
		if s.GlobalClock() != 1 {
			t.Errorf("server %d clock = %d after partial push", i, s.GlobalClock())
		}
	}
}

func TestShardedValidation(t *testing.T) {
	pl, _ := RoundRobin([]string{"a"}, 2)
	if _, err := NewSharded(nil, nil); err == nil {
		t.Error("nil placement accepted")
	}
	if _, err := NewSharded(pl, nil); err == nil {
		t.Error("backend count mismatch accepted")
	}
	sh, _, _ := shardedFixture(t, 1)
	if err := sh.Push(0, map[string]tensor.Vector{"unknown": {1}}); err == nil {
		t.Error("unplaced key accepted on push")
	}
	if _, _, err := sh.Pull([]string{"unknown"}, 0); err == nil {
		t.Error("unplaced key accepted on pull")
	}
}

func TestShardedConcurrentWorkers(t *testing.T) {
	sh, _, keys := shardedFixture(t, 4)
	var wg sync.WaitGroup
	const waves = 20
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < waves; c++ {
				updates := map[string]tensor.Vector{}
				for _, k := range keys {
					updates[k] = tensor.Vector{1, 0}
				}
				if err := sh.Push(w, updates); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, clock, err := sh.Pull(keys, waves)
	if err != nil {
		t.Fatal(err)
	}
	if clock != waves {
		t.Errorf("clock = %d, want %d", clock, waves)
	}
	for _, k := range keys {
		if got[k][0] != 4*waves {
			t.Errorf("shard %s = %v, want %d", k, got[k][0], 4*waves)
		}
	}
}
