package ps

import (
	"fmt"
	"net"
	"testing"

	"hetpipe/internal/tensor"
)

// Benchmark shapes: 32 shard keys of 256 float64 each (8192 parameters) is
// the scale the live MLP tasks shard at — big enough that payload encoding
// dominates framing, small enough that a -benchtime 2000x CI run stays fast.
const (
	benchKeys = 32
	benchDim  = 256
	// benchEpoch bounds server-side retained state: a parameter server
	// retains per-wave deltas and clock snapshots by design, so the push
	// benchmarks recreate the server every benchEpoch iterations (off the
	// timer) instead of letting b.N waves of history accumulate.
	benchEpoch = 256
)

func benchShapes() ([]string, map[string]tensor.Vector) {
	keys := make([]string, benchKeys)
	updates := make(map[string]tensor.Vector, benchKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("chunk%04d", i)
		v := make(tensor.Vector, benchDim)
		for j := range v {
			v[j] = float64(i*benchDim+j) * 1e-6
		}
		updates[keys[i]] = v
	}
	return keys, updates
}

// orderedShapes pairs benchShapes' keys with their vectors in key order,
// plus a reusable pull destination — the live runtime's steady-state shapes.
func orderedShapes() ([]string, []tensor.Vector, []tensor.Vector) {
	keys, updates := benchShapes()
	vecs := make([]tensor.Vector, len(keys))
	dst := make([]tensor.Vector, len(keys))
	for i, k := range keys {
		vecs[i] = updates[k]
		dst[i] = make(tensor.Vector, benchDim)
	}
	return keys, vecs, dst
}

func newBenchServer(b *testing.B, keys []string, updates map[string]tensor.Vector) *Server {
	b.Helper()
	s, err := NewServer(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range keys {
		if err := s.Register(k, make([]float64, len(updates[k]))); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// newBenchBackends builds `servers` in-process shard servers under a
// round-robin placement over keys.
func newBenchBackends(b *testing.B, keys []string, servers int) (*Placement, []Backend) {
	b.Helper()
	pl, err := RoundRobin(keys, servers)
	if err != nil {
		b.Fatal(err)
	}
	backends := make([]Backend, servers)
	for i := range backends {
		s, err := NewServer(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range pl.KeysOn(i) {
			if err := s.Register(k, make([]float64, benchDim)); err != nil {
				b.Fatal(err)
			}
		}
		backends[i] = AdaptServer(s)
	}
	return pl, backends
}

// BenchmarkTCPPushPull measures one client round-trip over loopback TCP on
// the binary wire protocol: a full-keyset push and a clock-versioned
// snapshot pull, the two data-plane operations every live wave performs.
func BenchmarkTCPPushPull(b *testing.B) {
	keys, vecs, dst := orderedShapes()
	_, updates := benchShapes()

	b.Run("push", func(b *testing.B) {
		var (
			s *Server
			l net.Listener
			c *Client
		)
		setup := func() {
			s = newBenchServer(b, keys, updates)
			var err error
			l, err = net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go Serve(l, s)
			if c, err = Dial(l.Addr().String()); err != nil {
				b.Fatal(err)
			}
		}
		teardown := func() {
			c.Close()
			l.Close()
		}
		setup()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%benchEpoch == 0 {
				b.StopTimer()
				teardown()
				setup()
				b.StartTimer()
			}
			if _, err := c.PushOrdered(0, keys, vecs); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		teardown()
	})

	b.Run("pullat", func(b *testing.B) {
		s := newBenchServer(b, keys, updates)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		go Serve(l, s)
		c, err := Dial(l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if _, err := c.PushOrdered(0, keys, vecs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.PullAtInto(dst, keys, 1); err != nil {
				b.Fatal(err)
			}
		}
	})

	// wave is the full per-wave round trip a live worker performs: push the
	// aggregated update, then pull the snapshot at the clock it produced.
	// Each pull is a fresh clock (snapshot-cache miss + wave fold), so this
	// exercises the fold/recycle steady state rather than the cached fast
	// path the pullat sub-benchmark measures.
	b.Run("wave", func(b *testing.B) {
		var (
			s *Server
			l net.Listener
			c *Client
		)
		setup := func() {
			s = newBenchServer(b, keys, updates)
			var err error
			l, err = net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go Serve(l, s)
			if c, err = Dial(l.Addr().String()); err != nil {
				b.Fatal(err)
			}
		}
		teardown := func() {
			c.Close()
			l.Close()
		}
		setup()
		clock := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%benchEpoch == 0 {
				b.StopTimer()
				teardown()
				setup()
				clock = 0
				b.StartTimer()
			}
			if _, err := c.PushOrdered(0, keys, vecs); err != nil {
				b.Fatal(err)
			}
			clock++
			if err := c.PullAtInto(dst, keys, clock); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		teardown()
	})
}

// BenchmarkShardedInproc measures the in-process sharded data plane: one
// worker's concurrent push fan-out over four shard servers and the matching
// full-keyset snapshot pull into reused buffers — the steady-state pattern
// of every live wave.
func BenchmarkShardedInproc(b *testing.B) {
	const servers = 4
	keys, vecs, dst := orderedShapes()

	newSharded := func(b *testing.B) *Sharded {
		b.Helper()
		pl, backends := newBenchBackends(b, keys, servers)
		sh, err := NewSharded(pl, backends)
		if err != nil {
			b.Fatal(err)
		}
		return sh
	}

	b.Run("push", func(b *testing.B) {
		sh := newSharded(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%benchEpoch == 0 {
				b.StopTimer()
				sh = newSharded(b)
				b.StartTimer()
			}
			if err := sh.PushOrdered(0, keys, vecs); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("pullat", func(b *testing.B) {
		sh := newSharded(b)
		if err := sh.PushOrdered(0, keys, vecs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sh.PullAtInto(dst, keys, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
