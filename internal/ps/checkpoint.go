package ps

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hetpipe/internal/tensor"
)

// Checkpoint file format constants. The header is decoded before the payload
// so a reader can reject foreign files and future versions with a precise
// error instead of a gob mismatch deep inside the state.
const (
	// CheckpointMagic identifies a hetpipe parameter-server checkpoint file.
	CheckpointMagic = "hetpipe-ps-checkpoint"
	// CheckpointVersion is the current on-disk format version.
	CheckpointVersion = 1
)

// ErrCheckpointVersion reports a checkpoint written by an incompatible format
// version; match with errors.Is.
var ErrCheckpointVersion = errors.New("ps: checkpoint version mismatch")

// ServerState is one shard server's complete, clock-versioned state: the
// registered initial weights, the current weights, every worker's clock, the
// per-wave deltas not yet folded into snapshots, and the materialized
// snapshots. It is a deep copy — mutating it never touches the server it was
// captured from.
type ServerState struct {
	Clocks      []int
	Initial     map[string]tensor.Vector
	Shards      map[string]tensor.Vector
	WaveDeltas  [][]map[string]tensor.Vector
	Snapshots   []map[string]tensor.Vector
	MaxDistance int
	Pushes      uint64
	Pulls       uint64
}

// globalClock is min over workers of pushed waves, like Server.GlobalClock.
func (st *ServerState) globalClock() int {
	min := st.Clocks[0]
	for _, c := range st.Clocks[1:] {
		if c < min {
			min = c
		}
	}
	return min
}

// validate checks internal consistency: every shard key registered in
// Initial must appear in Shards (and vice versa) with matching dimensions,
// snapshots must cover the same keys, and wave deltas must come from known
// workers and registered shards. A state violating this — a torn write, a
// hand-edited file, a shard lost in transit — is rejected before any server
// is built from it.
func (st *ServerState) validate() error {
	if len(st.Clocks) < 1 {
		return fmt.Errorf("ps: checkpoint server state has no workers")
	}
	for _, c := range st.Clocks {
		if c < 0 {
			return fmt.Errorf("ps: checkpoint clock %d negative", c)
		}
	}
	if len(st.Initial) == 0 {
		return fmt.Errorf("ps: checkpoint server state has no shards")
	}
	for key, init := range st.Initial {
		cur, ok := st.Shards[key]
		if !ok {
			return fmt.Errorf("ps: checkpoint missing current weights for shard %q (partial shard state)", key)
		}
		if len(cur) != len(init) {
			return fmt.Errorf("ps: checkpoint shard %q length %d, initial length %d", key, len(cur), len(init))
		}
	}
	for key := range st.Shards {
		if _, ok := st.Initial[key]; !ok {
			return fmt.Errorf("ps: checkpoint has unregistered shard %q (partial shard state)", key)
		}
	}
	for i, snap := range st.Snapshots {
		for key, v := range snap {
			init, ok := st.Initial[key]
			if !ok {
				return fmt.Errorf("ps: checkpoint snapshot %d has unregistered shard %q", i, key)
			}
			if len(v) != len(init) {
				return fmt.Errorf("ps: checkpoint snapshot %d shard %q length %d, want %d", i, key, len(v), len(init))
			}
		}
		for key := range st.Initial {
			if _, ok := snap[key]; !ok {
				return fmt.Errorf("ps: checkpoint snapshot %d missing shard %q (partial shard state)", i, key)
			}
		}
	}
	for wave, perWorker := range st.WaveDeltas {
		if perWorker == nil {
			continue // folded into a snapshot and freed, like on a live server
		}
		if len(perWorker) != len(st.Clocks) {
			return fmt.Errorf("ps: checkpoint wave %d has %d worker slots, want %d", wave, len(perWorker), len(st.Clocks))
		}
		for w, deltas := range perWorker {
			for key, delta := range deltas {
				init, ok := st.Initial[key]
				if !ok {
					return fmt.Errorf("ps: checkpoint wave %d worker %d delta for unregistered shard %q", wave, w, key)
				}
				if len(delta) != len(init) {
					return fmt.Errorf("ps: checkpoint wave %d worker %d shard %q length %d, want %d", wave, w, key, len(delta), len(init))
				}
			}
		}
	}
	return nil
}

func cloneShardMap(m map[string]tensor.Vector) map[string]tensor.Vector {
	out := make(map[string]tensor.Vector, len(m))
	for k, v := range m {
		out[k] = v.Clone()
	}
	return out
}

// State captures the server's complete state as a deep copy, taken under the
// server's lock. Capturing a closed server fails.
func (s *Server) State() (*ServerState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("ps: server closed")
	}
	st := &ServerState{
		Clocks:      append([]int(nil), s.clocks...),
		Initial:     cloneShardMap(s.initial),
		Shards:      cloneShardMap(s.shards),
		MaxDistance: s.maxDistance,
		Pushes:      s.pushes,
		Pulls:       s.pulls,
	}
	// The in-memory wave deltas are flat packed waveUpdates; the checkpoint
	// format keeps the original per-(wave,worker) map layout, so old files
	// stay readable. Waves already folded into a snapshot are freed on the
	// live server and stored as nil here, exactly as before.
	workers := len(s.clocks)
	for wave := 0; wave*workers < len(s.waveDeltas); wave++ {
		if wave < len(s.snapshots)-1 {
			st.WaveDeltas = append(st.WaveDeltas, nil)
			continue
		}
		cp := make([]map[string]tensor.Vector, workers)
		for w := 0; w < workers; w++ {
			if s.clocks[w] <= wave {
				continue // not pushed yet
			}
			u := &s.waveDeltas[wave*workers+w]
			m := make(map[string]tensor.Vector, len(u.keys))
			off := 0
			for _, k := range u.keys {
				n := len(s.initial[k])
				m[k] = u.backing[off : off+n].Clone()
				off += n
			}
			cp[w] = m
		}
		st.WaveDeltas = append(st.WaveDeltas, cp)
	}
	for _, snap := range s.snapshots {
		st.Snapshots = append(st.Snapshots, cloneShardMap(snap))
	}
	return st, nil
}

// RestoreServer rebuilds a shard server from a captured (or loaded) state.
// The state is validated and deep-copied, so the caller may keep using it.
// A server restored from a TruncateToClock'd checkpoint serves bit-identical
// PullAt snapshots for every clock at or below the cut and accepts the next
// push from each worker at exactly the cut wave.
func RestoreServer(st *ServerState) (*Server, error) {
	if st == nil {
		return nil, fmt.Errorf("ps: nil checkpoint state")
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	s, err := NewServer(len(st.Clocks))
	if err != nil {
		return nil, err
	}
	copy(s.clocks, st.Clocks)
	s.initial = cloneShardMap(st.Initial)
	s.shards = cloneShardMap(st.Shards)
	s.maxDistance = st.MaxDistance
	s.pushes = st.Pushes
	s.pulls = st.Pulls
	// Rebuild the flat packed wave-delta storage from the checkpoint's map
	// layout. Keys are sorted for a stable in-memory order; folds add
	// independent shards, so the order never changes the numerics.
	workers := len(st.Clocks)
	for wave, perWorker := range st.WaveDeltas {
		base := wave * workers
		for len(s.waveDeltas) < base+workers {
			s.waveDeltas = append(s.waveDeltas, waveUpdate{})
		}
		if perWorker == nil {
			continue // folded into a snapshot and freed, like on a live server
		}
		for w, deltas := range perWorker {
			if deltas == nil {
				continue
			}
			u := &s.waveDeltas[base+w]
			u.keys = make([]string, 0, len(deltas))
			total := 0
			for k, v := range deltas {
				u.keys = append(u.keys, k)
				total += len(v)
			}
			sort.Strings(u.keys)
			u.backing = make(tensor.Vector, total)
			off := 0
			for _, k := range u.keys {
				off += copy(u.backing[off:], deltas[k])
			}
		}
	}
	for _, snap := range st.Snapshots {
		s.snapshots = append(s.snapshots, cloneShardMap(snap))
	}
	return s, nil
}

// Checkpoint is a consistent cut of a whole sharded parameter-server
// deployment: one state per shard server, all truncated to a common clock.
type Checkpoint struct {
	// Clock is the cut's global clock: every server's state reflects exactly
	// the waves below it.
	Clock int
	// States holds one server state per shard server, in server order.
	States []*ServerState
}

// Capture snapshots every server and truncates the result to the consistent
// cut clock — the minimum global clock across the servers at capture time.
// Workers may keep pushing while Capture runs: waves at or above the cut are
// discarded by the truncation, so the checkpoint is always a consistent,
// resumable prefix of the run. A worker resuming from it replays its
// minibatches deterministically and re-pushes exactly the waves at or above
// Clock (WSP numerics are timing-independent, so the replayed trajectory is
// bit-identical).
func Capture(servers []*Server) (*Checkpoint, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("ps: no servers to checkpoint")
	}
	ck := &Checkpoint{}
	for i, s := range servers {
		st, err := s.State()
		if err != nil {
			return nil, fmt.Errorf("ps: server %d: %w", i, err)
		}
		if i > 0 && len(st.Clocks) != len(ck.States[0].Clocks) {
			return nil, fmt.Errorf("ps: server %d expects %d workers, server 0 expects %d",
				i, len(st.Clocks), len(ck.States[0].Clocks))
		}
		ck.States = append(ck.States, st)
	}
	cut := ck.States[0].globalClock()
	for _, st := range ck.States[1:] {
		if c := st.globalClock(); c < cut {
			cut = c
		}
	}
	if err := ck.TruncateToClock(cut); err != nil {
		return nil, err
	}
	return ck, nil
}

// TruncateToClock rewrites every server state to the clock-c boundary: all
// worker clocks are clamped to c, every wave delta at or above c is dropped,
// snapshots above c are dropped, and the current weights become the clock-c
// snapshot. The result is the state a fault-free deployment would have had
// the moment the global clock reached c with no wave-c work pushed yet — the
// consistent cut that makes a mid-run capture resumable.
func (ck *Checkpoint) TruncateToClock(c int) error {
	if c < 0 {
		return fmt.Errorf("ps: negative truncation clock %d", c)
	}
	for i, st := range ck.States {
		if st.globalClock() < c {
			return fmt.Errorf("ps: server %d global clock %d below truncation clock %d", i, st.globalClock(), c)
		}
		snap, err := st.snapshotAt(c)
		if err != nil {
			return fmt.Errorf("ps: server %d: %w", i, err)
		}
		for w := range st.Clocks {
			st.Clocks[w] = c
		}
		if len(st.WaveDeltas) > c {
			st.WaveDeltas = st.WaveDeltas[:c]
		}
		if len(st.Snapshots) > c+1 {
			st.Snapshots = st.Snapshots[:c+1]
		}
		st.Shards = cloneShardMap(snap)
	}
	ck.Clock = c
	return nil
}

// snapshotAt materializes the clock-c snapshot inside a state, mirroring
// Server.snapshotLocked: deltas fold in (wave, worker) order and are freed
// once folded. Requires every wave below c to be present or already folded.
func (st *ServerState) snapshotAt(c int) (map[string]tensor.Vector, error) {
	if len(st.Snapshots) == 0 {
		st.Snapshots = append(st.Snapshots, cloneShardMap(st.Initial))
	}
	for len(st.Snapshots) <= c {
		wave := len(st.Snapshots) - 1
		if wave >= len(st.WaveDeltas) || st.WaveDeltas[wave] == nil {
			return nil, fmt.Errorf("ps: checkpoint lacks wave %d deltas for snapshot %d", wave, c)
		}
		next := cloneShardMap(st.Snapshots[wave])
		for w := range st.Clocks {
			for k, delta := range st.WaveDeltas[wave][w] {
				next[k].AddInPlace(delta)
			}
		}
		st.WaveDeltas[wave] = nil
		st.Snapshots = append(st.Snapshots, next)
	}
	return st.Snapshots[c], nil
}

// Restore rebuilds one server per captured state.
func (ck *Checkpoint) Restore() ([]*Server, error) {
	if len(ck.States) == 0 {
		return nil, fmt.Errorf("ps: empty checkpoint")
	}
	servers := make([]*Server, 0, len(ck.States))
	for i, st := range ck.States {
		s, err := RestoreServer(st)
		if err != nil {
			return nil, fmt.Errorf("ps: server %d: %w", i, err)
		}
		servers = append(servers, s)
	}
	return servers, nil
}

// validate checks cross-server consistency on top of each state's own checks.
func (ck *Checkpoint) validate() error {
	if len(ck.States) == 0 {
		return fmt.Errorf("ps: empty checkpoint")
	}
	workers := -1
	for i, st := range ck.States {
		if st == nil {
			return fmt.Errorf("ps: checkpoint server %d state missing", i)
		}
		if err := st.validate(); err != nil {
			return fmt.Errorf("ps: server %d: %w", i, err)
		}
		if workers < 0 {
			workers = len(st.Clocks)
		} else if len(st.Clocks) != workers {
			return fmt.Errorf("ps: server %d expects %d workers, server 0 expects %d", i, len(st.Clocks), workers)
		}
	}
	return nil
}

// fileHeader is decoded before the payload so magic and version mismatches
// fail precisely.
type fileHeader struct {
	Magic   string
	Version int
}

// SaveCheckpoint writes the checkpoint to path atomically: the bytes go to a
// temporary file in the destination directory, which is fsynced and renamed
// into place, so a reader never observes a torn file — it sees either the
// previous checkpoint or the new one, complete.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("ps: nil checkpoint")
	}
	if err := ck.validate(); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".hetpipe-ckpt-*")
	if err != nil {
		return fmt.Errorf("ps: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	enc := gob.NewEncoder(tmp)
	if err := enc.Encode(fileHeader{Magic: CheckpointMagic, Version: CheckpointVersion}); err != nil {
		tmp.Close()
		return fmt.Errorf("ps: checkpoint encode: %w", err)
	}
	if err := enc.Encode(ck); err != nil {
		tmp.Close()
		return fmt.Errorf("ps: checkpoint encode: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ps: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ps: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ps: checkpoint rename: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint written by SaveCheckpoint.
// Foreign files, corrupt payloads, version skew (ErrCheckpointVersion), and
// internally inconsistent states (e.g. a missing shard) are all rejected.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ps: checkpoint open: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var hdr fileHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("ps: checkpoint corrupt (header): %w", err)
	}
	if hdr.Magic != CheckpointMagic {
		return nil, fmt.Errorf("ps: %q is not a hetpipe parameter-server checkpoint", path)
	}
	if hdr.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads version %d",
			ErrCheckpointVersion, hdr.Version, CheckpointVersion)
	}
	ck := &Checkpoint{}
	if err := dec.Decode(ck); err != nil {
		return nil, fmt.Errorf("ps: checkpoint corrupt (payload): %w", err)
	}
	if err := ck.validate(); err != nil {
		return nil, err
	}
	return ck, nil
}
