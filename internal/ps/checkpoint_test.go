package ps

import (
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hetpipe/internal/tensor"
)

// buildServers stands up `servers` shard hosts for `workers` workers with two
// shards each and pushes `waves` full waves of deterministic deltas.
func buildServers(t *testing.T, servers, workers, waves int) []*Server {
	t.Helper()
	out := make([]*Server, servers)
	for i := range out {
		s, err := NewServer(workers)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			key := shardKey(i, j)
			if err := s.Register(key, []float64{0, 0, 0}); err != nil {
				t.Fatal(err)
			}
		}
		out[i] = s
	}
	pushWaves(t, out, workers, 0, waves)
	return out
}

func shardKey(server, j int) string {
	return string(rune('a'+server)) + string(rune('0'+j))
}

// pushWaves pushes waves [from, to) from every worker to every server, with
// deltas that are a deterministic function of (server, shard, worker, wave).
func pushWaves(t *testing.T, servers []*Server, workers, from, to int) {
	t.Helper()
	for wave := from; wave < to; wave++ {
		for w := 0; w < workers; w++ {
			for i, s := range servers {
				updates := map[string]tensor.Vector{}
				for j := 0; j < 2; j++ {
					v := float64(1+i) * float64(1+j) * float64(1+w) * float64(1+wave)
					updates[shardKey(i, j)] = tensor.Vector{v, 2 * v, 3 * v}
				}
				if _, err := s.Push(w, updates); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// allPulls reads every clock snapshot of every shard off the servers.
func allPulls(t *testing.T, servers []*Server, maxClock int) map[string][]tensor.Vector {
	t.Helper()
	out := map[string][]tensor.Vector{}
	for i, s := range servers {
		for j := 0; j < 2; j++ {
			key := shardKey(i, j)
			for c := 0; c <= maxClock; c++ {
				snap, err := s.PullAt([]string{key}, c)
				if err != nil {
					t.Fatalf("PullAt(%s, %d): %v", key, c, err)
				}
				out[key] = append(out[key], snap[key])
			}
		}
	}
	return out
}

func TestCheckpointRoundTripBitIdentical(t *testing.T) {
	const workers, waves = 3, 4
	servers := buildServers(t, 2, workers, waves)
	ck, err := Capture(servers)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Clock != waves {
		t.Fatalf("cut clock %d, want %d", ck.Clock, waves)
	}
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := loaded.Restore()
	if err != nil {
		t.Fatal(err)
	}

	// Every clock-versioned snapshot must be bit-identical across the
	// original and the restored deployment.
	want := allPulls(t, servers, waves)
	got := allPulls(t, restored, waves)
	for key, snaps := range want {
		for c := range snaps {
			for i := range snaps[c] {
				if got[key][c][i] != snaps[c][i] {
					t.Fatalf("shard %q clock %d coord %d: restored %v, original %v",
						key, c, i, got[key][c][i], snaps[c][i])
				}
			}
		}
	}

	// Training must continue identically: push two more waves into both and
	// compare the final snapshots bit for bit.
	pushWaves(t, servers, workers, waves, waves+2)
	pushWaves(t, restored, workers, waves, waves+2)
	for i := range servers {
		if servers[i].GlobalClock() != restored[i].GlobalClock() {
			t.Fatalf("server %d clocks diverge: %d vs %d", i, servers[i].GlobalClock(), restored[i].GlobalClock())
		}
		for j := 0; j < 2; j++ {
			key := shardKey(i, j)
			a, err := servers[i].PullAt([]string{key}, waves+2)
			if err != nil {
				t.Fatal(err)
			}
			b, err := restored[i].PullAt([]string{key}, waves+2)
			if err != nil {
				t.Fatal(err)
			}
			for k := range a[key] {
				if a[key][k] != b[key][k] {
					t.Fatalf("post-resume shard %q coord %d: %v vs %v", key, k, a[key][k], b[key][k])
				}
			}
		}
	}
}

func TestCheckpointTruncatesTornCapture(t *testing.T) {
	// Worker 0 runs two waves ahead of worker 1, and server 1 additionally
	// missed worker 0's latest wave — the kind of torn state a mid-run
	// capture observes. The cut must land at the global minimum, with every
	// clock clamped there.
	const workers = 2
	servers := buildServers(t, 2, workers, 1)
	for wave := 1; wave < 3; wave++ {
		for i, s := range servers {
			if i == 1 && wave == 2 {
				continue // torn: server 1 never got worker 0's wave-2 push
			}
			updates := map[string]tensor.Vector{}
			for j := 0; j < 2; j++ {
				v := float64(1+i) * float64(1+j) * float64(1+wave)
				updates[shardKey(i, j)] = tensor.Vector{v, 2 * v, 3 * v}
			}
			if _, err := s.Push(0, updates); err != nil {
				t.Fatal(err)
			}
		}
	}
	ck, err := Capture(servers)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Clock != 1 {
		t.Fatalf("cut clock %d, want 1 (worker 1 only pushed wave 0)", ck.Clock)
	}
	for _, st := range ck.States {
		for w, c := range st.Clocks {
			if c != 1 {
				t.Fatalf("worker %d clock %d after truncation, want 1", w, c)
			}
		}
		if len(st.WaveDeltas) > 1 {
			t.Fatalf("wave deltas above the cut survived: %d entries", len(st.WaveDeltas))
		}
	}
	restored, err := ck.Restore()
	if err != nil {
		t.Fatal(err)
	}
	// The restored snapshot at the cut equals the original's clock-1 snapshot.
	for i := range servers {
		key := shardKey(i, 0)
		want, err := servers[i].PullAt([]string{key}, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored[i].PullAt([]string{key}, 1)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want[key] {
			if got[key][k] != want[key][k] {
				t.Fatalf("truncated snapshot diverges at %d: %v vs %v", k, got[key][k], want[key][k])
			}
		}
	}
}

func TestCheckpointAtomicOverwrite(t *testing.T) {
	servers := buildServers(t, 1, 2, 1)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	ck1, err := Capture(servers)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, ck1); err != nil {
		t.Fatal(err)
	}
	pushWaves(t, servers, 2, 1, 2)
	ck2, err := Capture(servers)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, ck2); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Clock != 2 {
		t.Fatalf("overwritten checkpoint clock %d, want 2", loaded.Clock)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir has %d entries, want just the checkpoint", len(entries))
	}
}

func TestCheckpointCorruptFile(t *testing.T) {
	dir := t.TempDir()

	// Not a checkpoint at all.
	garbage := filepath.Join(dir, "garbage.bin")
	if err := os.WriteFile(garbage, []byte("definitely not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(garbage); err == nil {
		t.Error("LoadCheckpoint accepted garbage")
	}

	// A valid header followed by a truncated payload.
	servers := buildServers(t, 1, 2, 2)
	ck, err := Capture(servers)
	if err != nil {
		t.Fatal(err)
	}
	whole := filepath.Join(dir, "whole.bin")
	if err := SaveCheckpoint(whole, ck); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.bin")
	if err := os.WriteFile(cut, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(cut); err == nil {
		t.Error("LoadCheckpoint accepted a truncated file")
	}

	// A wrong magic string.
	foreign := filepath.Join(dir, "foreign.bin")
	f, err := os.Create(foreign)
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(fileHeader{Magic: "something-else", Version: CheckpointVersion}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := LoadCheckpoint(foreign); err == nil {
		t.Error("LoadCheckpoint accepted a foreign magic")
	}
}

func TestCheckpointVersionSkew(t *testing.T) {
	servers := buildServers(t, 1, 2, 1)
	ck, err := Capture(servers)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "future.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(fileHeader{Magic: CheckpointMagic, Version: CheckpointVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(ck); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = LoadCheckpoint(path)
	if !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("LoadCheckpoint on a future version: %v, want ErrCheckpointVersion", err)
	}
}

func TestCheckpointPartialShard(t *testing.T) {
	servers := buildServers(t, 1, 2, 1)
	ck, err := Capture(servers)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one shard's current weights — a partial state.
	delete(ck.States[0].Shards, shardKey(0, 1))
	path := filepath.Join(t.TempDir(), "partial.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(fileHeader{Magic: CheckpointMagic, Version: CheckpointVersion}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(ck); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("LoadCheckpoint accepted a partial shard state")
	}
	// SaveCheckpoint refuses to write it in the first place.
	if err := SaveCheckpoint(filepath.Join(t.TempDir(), "x.bin"), ck); err == nil {
		t.Error("SaveCheckpoint accepted a partial shard state")
	}
	// RestoreServer refuses it too.
	if _, err := RestoreServer(ck.States[0]); err == nil {
		t.Error("RestoreServer accepted a partial shard state")
	}
}

func TestCheckpointDimensionSkew(t *testing.T) {
	servers := buildServers(t, 1, 2, 1)
	ck, err := Capture(servers)
	if err != nil {
		t.Fatal(err)
	}
	ck.States[0].Shards[shardKey(0, 0)] = tensor.Vector{1, 2} // wrong length
	if err := SaveCheckpoint(filepath.Join(t.TempDir(), "x.bin"), ck); err == nil {
		t.Error("SaveCheckpoint accepted a dimension-skewed shard")
	}
}
