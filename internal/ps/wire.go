package ps

import (
	"encoding/binary"
	"errors"

	"hetpipe/internal/tensor"
)

// Wire protocol v1: length-prefixed binary frames over a per-worker TCP
// connection, replacing the original gob encoding. The design goals are an
// allocation-free steady state (pooled buffers on both ends, no reflection,
// no per-call map conversion) and payloads that are straight memcpys of the
// float64 data.
//
// A connection opens with an 8-byte preamble from the client — magic uint32,
// version uint16, two reserved zero bytes, all little-endian — so a server
// can reject foreign peers and future versions with a protocol-error frame
// instead of a decode failure deep inside a request.
//
// Every frame is a uint32 little-endian payload length followed by that many
// payload bytes, capped at maxFrame. Requests start with a one-byte opcode:
//
//	opPush:     uvarint worker, keyset, then one vector per key
//	opPull:     uvarint minClock, keyset
//	opPullAt:   uvarint clock, keyset
//	opClock, opMeta, opDistance: opcode only
//
// Responses start with a one-byte status (statusOK, statusAppErr,
// statusProtoErr); non-OK frames carry a length-prefixed message. OK
// payloads are op-specific:
//
//	opPush:     uvarint new worker clock
//	opPull:     one vector per requested key (request order), then uvarint
//	            observed clock — the clock trails so the server can encode
//	            vectors in one pass under its lock
//	opPullAt:   one vector per requested key (request order)
//	opClock, opDistance: uvarint clock
//	opMeta:     uvarint workers, uvarint keys, then per key: string, uvarint dim
//
// A keyset is `uvarint n` followed by n key references. Keys are interned
// per connection: the first time a client sends a key it writes a 0 token
// followed by the length-prefixed name, implicitly assigning the next
// sequential id; afterwards it writes id+1. The server mirrors the table, so
// steady-state requests carry two or three bytes per key instead of the
// name, and responses carry no keys at all — vectors come back in request
// order. Vectors are `uvarint dim` followed by dim raw little-endian float64
// values.
const (
	wireMagic   uint32 = 0x48505053 // "SPPH" on the wire: HetPipe Parameter Server
	wireVersion uint16 = 1
	// maxFrame caps a frame payload. Connections carrying a larger frame are
	// counted malformed and dropped — a length prefix from a confused or
	// hostile peer must not become a giant allocation.
	maxFrame = 64 << 20
	// preambleLen is the size of the connection-opening header.
	preambleLen = 8
)

// Request opcodes. The zero value is invalid on purpose: an all-zero frame
// decodes to "unknown op", not a silent push.
const (
	opPush byte = iota + 1
	opPull
	opClock
	opPullAt
	opMeta
	opDistance
)

// Response status codes.
const (
	statusOK       byte = 0
	statusAppErr   byte = 1 // server-side application error (bad worker, unregistered shard, closed)
	statusProtoErr byte = 2 // the peer violated the wire protocol; the connection closes after this frame
)

// Decode-layer sentinel errors. They are deliberately allocation-free so the
// hot decode path can return them directly; the transport wraps them with
// context before a frame or caller sees them.
var (
	errTruncated = errors.New("ps: truncated frame payload")
	errBadKeyRef = errors.New("ps: key reference out of range")
	errKeyCount  = errors.New("ps: keyset count exceeds frame size")
)

// encoder builds one outgoing frame in a reusable buffer. The first four
// bytes are reserved for the length prefix (begin/finish), so a finished
// frame is written with a single conn.Write — no separate header syscall.
type encoder struct {
	buf []byte
}

// begin resets the encoder and reserves the 4-byte length prefix.
func (e *encoder) begin() {
	e.buf = e.buf[:0]
	e.grow(4)
}

// finish patches the length prefix and returns the complete frame.
func (e *encoder) finish() []byte {
	binary.LittleEndian.PutUint32(e.buf[:4], uint32(len(e.buf)-4))
	return e.buf
}

// grow extends the buffer by n bytes and returns the new region.
//
//hetlint:hotpath
func (e *encoder) grow(n int) []byte {
	need := len(e.buf) + n
	if cap(e.buf) < need {
		nb := make([]byte, len(e.buf), need+need/2+64)
		copy(nb, e.buf)
		e.buf = nb
	}
	off := len(e.buf)
	e.buf = e.buf[:need]
	return e.buf[off:need]
}

//hetlint:hotpath
func (e *encoder) u8(x byte) {
	e.buf = append(e.buf, x)
}

//hetlint:hotpath
func (e *encoder) uvarint(x uint64) {
	e.buf = binary.AppendUvarint(e.buf, x)
}

//hetlint:hotpath
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	copy(e.grow(len(s)), s)
}

// vec appends a vector: uvarint dim followed by raw little-endian float64s.
//
//hetlint:hotpath
func (e *encoder) vec(v tensor.Vector) {
	e.uvarint(uint64(len(v)))
	tensor.PutLE(e.grow(8*len(v)), v)
}

// decoder reads one frame payload in place — no copies beyond the float
// conversion into the caller's destination vectors.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) reset(buf []byte) {
	d.buf = buf
	d.off = 0
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

//hetlint:hotpath
func (d *decoder) u8() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, errTruncated
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

//hetlint:hotpath
func (d *decoder) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.off += n
	return x, nil
}

//hetlint:hotpath
func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, errTruncated
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

// str decodes a length-prefixed string. It allocates, which is fine on the
// paths that use it: key-interning definitions (once per key per
// connection), error messages, and Meta.
func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// vecInto decodes a vector, reusing dst when its length already matches —
// the steady-state case for every pull into worker-owned buffers.
//
//hetlint:hotpath
func (d *decoder) vecInto(dst tensor.Vector) (tensor.Vector, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.remaining())/8 {
		return nil, errTruncated
	}
	b, err := d.bytes(int(n) * 8)
	if err != nil {
		return nil, err
	}
	if uint64(len(dst)) != n {
		dst = make(tensor.Vector, n)
	}
	tensor.GetLE(dst, b)
	return dst, nil
}

// vecRaw reads a vector header and returns its element count and raw
// little-endian payload bytes without converting them, so the caller can
// decode straight into a destination of its choosing.
//
//hetlint:hotpath
func (d *decoder) vecRaw() (int, []byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(d.remaining())/8 {
		return 0, nil, errTruncated
	}
	b, err := d.bytes(int(n) * 8)
	if err != nil {
		return 0, nil, err
	}
	return int(n), b, nil
}

// appendPreamble appends the connection-opening header.
func appendPreamble(buf []byte) []byte {
	var p [preambleLen]byte
	binary.LittleEndian.PutUint32(p[0:], wireMagic)
	binary.LittleEndian.PutUint16(p[4:], wireVersion)
	return append(buf, p[:]...)
}

// checkPreamble validates a connection-opening header.
func checkPreamble(p []byte) error {
	if len(p) != preambleLen {
		return errTruncated
	}
	if got := binary.LittleEndian.Uint32(p[0:]); got != wireMagic {
		return errors.New("ps: bad protocol magic (not a hetpipe parameter-server peer)")
	}
	if got := binary.LittleEndian.Uint16(p[4:]); got != wireVersion {
		return errors.New("ps: protocol version mismatch")
	}
	return nil
}
