package obs

import (
	"sync"
	"testing"
)

// Multi must preserve the backends' nil-observer fast path: composing nothing
// (or only nils) yields nil, not an empty closure the hot loop would call per
// event.
func TestMultiNilFastPath(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() != nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) != nil")
	}
	called := false
	single := func(Event) { called = true }
	got := Multi(nil, single, nil)
	if got == nil {
		t.Fatal("Multi with one live observer returned nil")
	}
	got(Event{})
	if !called {
		t.Error("surviving observer was not called")
	}
}

// Fan-out must call observers in argument order, once each per event.
func TestMultiOrder(t *testing.T) {
	var order []int
	fn := Multi(
		func(Event) { order = append(order, 1) },
		nil,
		func(Event) { order = append(order, 2) },
		func(Event) { order = append(order, 3) },
	)
	fn(Event{Kind: KindClock})
	fn(Event{Kind: KindPush})
	want := []int{1, 2, 3, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// A Recorder shared by concurrently emitting goroutines must not lose or tear
// events. Each backend serializes its own stream, but two engines running in
// parallel do not serialize against each other — this is the case the mutex
// exists for, and the one -race checks here.
func TestRecorderConcurrentEmit(t *testing.T) {
	var rec Recorder
	fn := rec.Func()
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				fn(Event{Kind: KindMinibatch, VW: g, Minibatch: i + 1})
			}
		}(g)
	}
	wg.Wait()
	if rec.Len() != goroutines*perG {
		t.Fatalf("recorded %d events, want %d", rec.Len(), goroutines*perG)
	}
	// Per-goroutine (per-VW) order must survive interleaving: each VW's
	// minibatch numbers arrive strictly increasing.
	last := map[int]int{}
	for _, e := range rec.Events() {
		if e.Minibatch <= last[e.VW] {
			t.Fatalf("vw %d minibatch %d arrived after %d", e.VW, e.Minibatch, last[e.VW])
		}
		last[e.VW] = e.Minibatch
	}
}

// Events must return a copy: appending after the snapshot is taken must not
// mutate what the caller already holds.
func TestRecorderEventsIsASnapshot(t *testing.T) {
	var rec Recorder
	fn := rec.Func()
	fn(Event{Kind: KindPull, Clock: 1})
	snap := rec.Events()
	fn(Event{Kind: KindPull, Clock: 2})
	if len(snap) != 1 || snap[0].Clock != 1 {
		t.Errorf("snapshot mutated: %+v", snap)
	}
	if rec.Len() != 2 {
		t.Errorf("Len = %d, want 2", rec.Len())
	}
}
