// Package obs defines the run-observation events both execution backends
// emit while a HetPipe run is in flight: the discrete-event simulator
// (internal/core.SimulateWSPFaults) and the live sharded-PS runtime
// (internal/cluster.Run) both stream the same event vocabulary — protocol
// progress plus fault injections and recoveries — which the public API
// (hetpipe.WithObserver) re-exports. Keeping the event type here lets the
// two backends share one definition without either importing the root
// package.
package obs

// Kind discriminates observation events.
type Kind int

const (
	// KindMinibatch fires when a virtual worker completes one minibatch.
	KindMinibatch Kind = iota + 1
	// KindPush fires when a virtual worker's per-wave aggregated update
	// reaches the parameter servers.
	KindPush
	// KindPull fires when a virtual worker's gated pull of the global
	// weights is satisfied.
	KindPull
	// KindClock fires when the WSP global clock is observed to advance.
	KindClock
	// KindFaultInject fires when a fault-plan entry (internal/fault) takes
	// effect: a straggler slowdown's first affected minibatch, a crash, a
	// PS-shard stall, or a link degradation's first affected transfer.
	// Event.Fault carries the fault's spec clause.
	KindFaultInject
	// KindRecover fires when a crashed worker is back: the simulator emits it
	// when the charged downtime has elapsed, the live runtime when the worker
	// has been restored from its last checkpoint and is about to replay.
	// Event.Clock carries the checkpoint's clock version (pushed waves) on
	// the live side.
	KindRecover
)

// Event is one observation. Fields that do not apply to a kind are zero.
type Event struct {
	// Backend names the emitting substrate: "sim" or "live".
	Backend string
	// Kind discriminates the event.
	Kind Kind
	// VW is the 0-based virtual worker index; -1 for cluster-wide events.
	VW int
	// Minibatch is the VW's 1-based minibatch number (KindMinibatch).
	Minibatch int
	// Wave is the 0-based wave index (KindMinibatch, KindPush).
	Wave int
	// Clock is the global clock after the event, where the emitting backend
	// knows it (KindClock and KindPull always; sim pushes too).
	Clock int
	// Time is seconds since run start: virtual seconds for the simulator,
	// wall-clock seconds for the live runtime.
	Time float64
	// Fault describes the injected fault for KindFaultInject and KindRecover
	// events, in the internal/fault spec language (e.g. "crash:w2:mb40").
	Fault string
}

// Func observes a stream of events. The simulator calls it from its single
// event-loop goroutine; the live runtime serializes calls, so an observer
// never needs its own locking.
type Func func(Event)
