// Package obs defines the run-observation events both execution backends
// emit while a HetPipe run is in flight: the discrete-event simulator
// (internal/core.SimulateWSPContext) and the live sharded-PS runtime
// (internal/cluster.Run) both stream the same event vocabulary, which the
// public API (hetpipe.WithObserver) re-exports. Keeping the event type here
// lets the two backends share one definition without either importing the
// root package.
package obs

// Kind discriminates observation events.
type Kind int

const (
	// KindMinibatch fires when a virtual worker completes one minibatch.
	KindMinibatch Kind = iota + 1
	// KindPush fires when a virtual worker's per-wave aggregated update
	// reaches the parameter servers.
	KindPush
	// KindPull fires when a virtual worker's gated pull of the global
	// weights is satisfied.
	KindPull
	// KindClock fires when the WSP global clock is observed to advance.
	KindClock
)

// Event is one observation. Fields that do not apply to a kind are zero.
type Event struct {
	// Backend names the emitting substrate: "sim" or "live".
	Backend string
	// Kind discriminates the event.
	Kind Kind
	// VW is the 0-based virtual worker index; -1 for cluster-wide events.
	VW int
	// Minibatch is the VW's 1-based minibatch number (KindMinibatch).
	Minibatch int
	// Wave is the 0-based wave index (KindMinibatch, KindPush).
	Wave int
	// Clock is the global clock after the event, where the emitting backend
	// knows it (KindClock and KindPull always; sim pushes too).
	Clock int
	// Time is seconds since run start: virtual seconds for the simulator,
	// wall-clock seconds for the live runtime.
	Time float64
}

// Func observes a stream of events. The simulator calls it from its single
// event-loop goroutine; the live runtime serializes calls, so an observer
// never needs its own locking.
type Func func(Event)
