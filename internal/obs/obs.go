// Package obs defines the run-observation events the execution backends
// emit while a HetPipe run is in flight: the discrete-event simulator
// (internal/core.SimulateWSPFaults), the live sharded-PS runtime
// (internal/cluster.Run), and the serving plane (internal/serve.Run) all
// stream the same event vocabulary — protocol and request progress plus
// fault injections and recoveries — which the public API
// (hetpipe.WithObserver) re-exports. Keeping the event type here lets the
// backends share one definition without any of them importing the root
// package.
package obs

// Kind discriminates observation events.
type Kind int

const (
	// KindMinibatch fires when a virtual worker completes one minibatch.
	KindMinibatch Kind = iota + 1
	// KindPush fires when a virtual worker's per-wave aggregated update
	// reaches the parameter servers.
	KindPush
	// KindPull fires when a virtual worker's gated pull of the global
	// weights is satisfied.
	KindPull
	// KindClock fires when the WSP global clock is observed to advance.
	KindClock
	// KindFaultInject fires when a fault-plan entry (internal/fault) takes
	// effect: a straggler slowdown's first affected minibatch, a crash, a
	// PS-shard stall, or a link degradation's first affected transfer.
	// Event.Fault carries the fault's spec clause.
	KindFaultInject
	// KindRecover fires when a crashed worker is back: the simulator emits it
	// when the charged downtime has elapsed, the live runtime when the worker
	// has been restored from its last checkpoint and is about to replay.
	// Event.Clock carries the checkpoint's clock version (pushed waves) on
	// the live side.
	KindRecover
	// KindArrive fires when a serving request enters the system and is
	// routed; Event.Request is the request id and Event.VW the chosen
	// replica.
	KindArrive
	// KindAdmit fires when the serving admission layer coalesces queued
	// requests into a microbatch; Event.Batch is the replica-local batch
	// sequence number and Event.Request the number of requests coalesced.
	KindAdmit
	// KindReply fires when a serving request's microbatch completes the
	// pipeline; Event.Request is the request id and Event.Batch its batch.
	KindReply
)

// Event is one observation. Fields that do not apply to a kind are zero.
type Event struct {
	// Backend names the emitting substrate: "sim", "live", or "serve".
	Backend string
	// Kind discriminates the event.
	Kind Kind
	// VW is the 0-based virtual worker index; -1 for cluster-wide events.
	VW int
	// Minibatch is the VW's 1-based minibatch number (KindMinibatch).
	Minibatch int
	// Wave is the 0-based wave index (KindMinibatch, KindPush).
	Wave int
	// Clock is the global clock after the event, where the emitting backend
	// knows it (KindClock and KindPull always; sim pushes too).
	Clock int
	// Time is seconds since run start: virtual seconds for the simulator,
	// wall-clock seconds for the live runtime.
	Time float64
	// Fault describes the injected fault for KindFaultInject and KindRecover
	// events, in the internal/fault spec language (e.g. "crash:w2:mb40").
	Fault string
	// Request is the 0-based serving request id (KindArrive, KindReply);
	// for KindAdmit it carries the number of requests coalesced instead.
	Request int
	// Batch is the replica-local 1-based microbatch sequence number
	// (KindAdmit, KindReply, and serving KindRecover events).
	Batch int
}

// Func observes a stream of events. The simulator calls it from its single
// event-loop goroutine; the live runtime serializes calls, so an observer
// never needs its own locking.
type Func func(Event)
