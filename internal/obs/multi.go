package obs

import "sync"

// Multi fans one event stream out to several observers, calling them in
// argument order. Nil entries are dropped, and when nothing remains Multi
// returns nil — so a caller composing optional observers keeps the backends'
// nil-observer fast path (no per-event call at all) instead of paying for an
// empty loop on every event. A single survivor is returned directly for the
// same reason.
func Multi(fns ...Func) Func {
	live := make([]Func, 0, len(fns))
	for _, fn := range fns {
		if fn != nil {
			live = append(live, fn)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(e Event) {
		for _, fn := range live {
			fn(e)
		}
	}
}

// Recorder accumulates every observed event in arrival order. Unlike a plain
// slice-appending closure it is safe to share across goroutines, so one
// recorder can tail several concurrent runs (each backend serializes its own
// emissions, but two engines running in parallel do not serialize against
// each other).
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Func returns the recording observer. The zero Recorder is ready to use.
func (r *Recorder) Func() Func {
	return func(e Event) {
		r.mu.Lock()
		r.events = append(r.events, e)
		r.mu.Unlock()
	}
}

// Events returns a copy of the recorded events in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len reports how many events have been recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
